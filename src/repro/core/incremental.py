"""Incremental waiting-graph construction (§III-D1).

The paper's analyzer does not wait for the collective to finish: it
"queues the collected data entries in order of their completion time and
constructs the waiting graph sequentially according to the queue order",
and "upon determining that a node is not being waited for (i.e., has an
in-degree of zero), the analyzer can recursively prune nodes with an
in-degree of zero" to bound memory.

:class:`IncrementalWaitingGraph` implements exactly that: records are
ingested one at a time (out-of-order submission is buffered and replayed
in completion-time order), the binding-mode edges are added on the fly,
and periodic pruning discards vertices that can no longer appear on the
critical path.  At any moment :meth:`snapshot` yields a regular
:class:`~repro.core.waiting_graph.WaitingGraph` over the retained
records, and the final critical path equals the batch-built one (tested
property).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.collective.primitives import StepSchedule
from repro.collective.runtime import StepRecord
from repro.core.waiting_graph import CriticalPathEntry, WaitingGraph


class IncrementalWaitingGraph:
    """Streaming construction of the waiting graph.

    ``prune_interval`` controls how often (in ingested records) the
    in-degree-zero prune runs; pruning never removes a record that is
    still waited on by a not-yet-complete step, nor the current latest
    end (the live critical-path anchor).
    """

    def __init__(self, schedule: StepSchedule,
                 prune_interval: int = 16) -> None:
        self.schedule = schedule
        self.prune_interval = prune_interval
        self.records: dict[tuple[str, int], StepRecord] = {}
        self._buffer: list[tuple[float, int, StepRecord]] = []
        self._tie = itertools.count()
        self._ingested = 0
        self.pruned_total = 0
        #: called with each record as it is ingested (in completion-time
        #: order) — the live pipeline's per-step aggregation hook
        self.ingest_listeners: list[Callable[[StepRecord], None]] = []
        #: called with the number of records each prune pass dropped
        self.prune_listeners: list[Callable[[int], None]] = []
        #: steps whose records a future step still needs (reverse deps)
        self._expected = {(s.node, s.step_index)
                          for s in schedule.all_steps()}

    # ------------------------------------------------------------------
    def submit(self, record: StepRecord) -> None:
        """Queue a record; ingestion happens in completion-time order."""
        heapq.heappush(self._buffer,
                       (record.end_time, next(self._tie), record))
        self._drain()

    def _drain(self) -> None:
        while self._buffer:
            _, _, record = heapq.heappop(self._buffer)
            self._ingest(record)

    def _ingest(self, record: StepRecord) -> None:
        key = (record.node, record.step_index)
        self.records[key] = record
        self._expected.discard(key)
        self._ingested += 1
        for listener in self.ingest_listeners:
            listener(record)
        if self.prune_interval > 0 \
                and self._ingested % self.prune_interval == 0:
            self.prune()

    # ------------------------------------------------------------------
    def _still_needed(self) -> set[tuple[str, int]]:
        """Records that a not-yet-ingested step may still wait on."""
        needed: set[tuple[str, int]] = set()
        for pending in self._expected:
            node, idx = pending
            if idx > 0:
                needed.add((node, idx - 1))
            step = self.schedule.step(node, idx)
            if step.depends_on is not None:
                needed.add(step.depends_on)
        return needed

    def prune(self) -> int:
        """Drop records whose vertices are not waited for by anything
        retained or pending.  Returns the number of records dropped."""
        if not self.records:
            return 0
        keep_keys = self._still_needed()
        anchor = max(self.records,
                     key=lambda k: self.records[k].end_time)
        # records referenced by retained records' binding predecessors
        # form the live critical chain; walk it from the anchor
        chain: set[tuple[str, int]] = set()
        graph = WaitingGraph(self.schedule, self.records.values())
        key: Optional[tuple[str, int]] = anchor
        while key is not None and key not in chain:
            chain.add(key)
            key = graph._predecessor_of(self.records[key])
        # waited-on by a retained in-degree sense: any record that a
        # retained record's structural edges point at
        waited: set[tuple[str, int]] = set()
        for (node, idx) in self.records:
            if idx > 0:
                waited.add((node, idx - 1))
            step = self.schedule.step(node, idx)
            if step.depends_on is not None:
                waited.add(step.depends_on)
        retain = (keep_keys | chain | waited) & set(self.records)
        retain.add(anchor)
        doomed = set(self.records) - retain
        for key in doomed:
            del self.records[key]
        self.pruned_total += len(doomed)
        for listener in self.prune_listeners:
            listener(len(doomed))
        return len(doomed)

    # ------------------------------------------------------------------
    @property
    def retained(self) -> int:
        return len(self.records)

    @property
    def ingested(self) -> int:
        return self._ingested

    @property
    def expected_remaining(self) -> int:
        """Steps of the schedule whose records have not arrived yet."""
        return len(self._expected)

    def stats(self) -> dict:
        """Memory-bounding effectiveness, for pipeline metrics:
        ``prune_efficiency`` is the fraction of ingested records the
        in-degree-zero prune has already discarded."""
        return {
            "ingested": self._ingested,
            "retained": self.retained,
            "pruned_total": self.pruned_total,
            "expected_remaining": len(self._expected),
            "prune_efficiency": (self.pruned_total / self._ingested
                                 if self._ingested else 0.0),
        }

    def snapshot(self) -> WaitingGraph:
        """A regular waiting graph over the retained records."""
        return WaitingGraph(self.schedule, self.records.values())

    def critical_path(self) -> list[CriticalPathEntry]:
        return self.snapshot().critical_path()

    # ------------------------------------------------------------------
    # checkpoint hooks (the live service's crash-safe snapshots)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe snapshot of the streaming construction state.

        The submit buffer is always empty between :meth:`submit` calls
        (submission drains synchronously), so only the retained
        records, the not-yet-arrived step set and the monotonic
        counters need to persist.  Records are stored **columnar**
        (one list per field) rather than as per-record objects: the
        retained set dominates checkpoint size, and the columnar form
        keeps the serialized payload — and therefore the synchronous
        checkpoint pause — small.
        """
        from repro.traces import serialize

        if self._buffer:
            raise RuntimeError(
                "cannot checkpoint mid-submit: buffer not drained")
        records = [self.records[key] for key in sorted(self.records)]
        return {
            "records": {
                "node": [r.node for r in records],
                "step": [r.step_index for r in records],
                "flow": [serialize.encode_flow_key(r.flow_key)
                         for r in records],
                "bytes": [r.size_bytes for r in records],
                "start": [r.start_time for r in records],
                "end": [r.end_time for r in records],
                "recv_source": [r.recv_source for r in records],
                "binding": [r.binding_dependency for r in records],
            },
            "expected": [[node, idx]
                         for node, idx in sorted(self._expected)],
            "ingested": self._ingested,
            "pruned_total": self.pruned_total,
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output.

        Ingest listeners are *not* replayed — the owning pipeline
        restores its own aggregates from the same checkpoint.
        """
        from repro.traces import serialize

        self.records = {}
        columns = state["records"]
        for node, step, flow, size, start, end, recv, binding in zip(
                columns["node"], columns["step"], columns["flow"],
                columns["bytes"], columns["start"], columns["end"],
                columns["recv_source"], columns["binding"]):
            record = StepRecord(
                node=node,
                step_index=int(step),
                flow_key=serialize.decode_flow_key(flow),
                size_bytes=int(size),
                start_time=float(start),
                end_time=float(end),
                recv_source=recv,
                binding_dependency=binding,
            )
            self.records[(record.node, record.step_index)] = record
        self._expected = {(node, int(idx))
                          for node, idx in state["expected"]}
        self._buffer = []
        self._ingested = int(state["ingested"])
        self.pruned_total = int(state["pruned_total"])
