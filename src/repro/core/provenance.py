"""Network provenance graphs (§III-D1).

Built from the switch telemetry reports a detection burst collected.
Vertices are flows and ports; edges carry the paper's three weight
definitions:

* ``e(f, p)`` — flow waits at port; weight
  ``w(f_i, p) = Σ_{j≠i} w(f_i, f_j)`` where ``w(f_i, f_j)`` is the
  packets-ahead count telemetry accumulated at enqueue time;
* ``e(p, f)`` — flow's contribution to port congestion; weight
  ``w(p, f_i) = pkt_num(f_i) / pkt_num(p) × qdepth(p)``;
* ``e(p_i, p_j)`` — PFC causality (upstream egress ``p_i`` halted by
  downstream egress ``p_j``); weight = the share of ``p_j``'s window
  traffic that arrived over the paused link,
  ``meter(p_i, p_j) / Σ_k meter(p_k, p_j)``.

The graph also carries *ungrounded pause* evidence: PAUSE frames whose
sender-side ingress occupancy was below the XOFF threshold at emission —
the storm signature (a buggy port pausing without congestion pressure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.units import Bytes
from repro.simnet.packet import FlowKey
from repro.simnet.pfc import PauseEvent, PortRef
from repro.simnet.telemetry import SwitchReport


@dataclass
class ProvenanceGraph:
    """Flow/port provenance over one collection of reports."""

    collective_flows: set[FlowKey] = field(default_factory=set)
    flows: set[FlowKey] = field(default_factory=set)
    ports: set[PortRef] = field(default_factory=set)
    #: e(f, p) weights
    flow_port: dict[tuple[FlowKey, PortRef], float] = field(
        default_factory=dict)
    #: e(p, f) weights
    port_flow: dict[tuple[PortRef, FlowKey], float] = field(
        default_factory=dict)
    #: e(p_i, p_j) weights
    port_port: dict[tuple[PortRef, PortRef], float] = field(
        default_factory=dict)
    #: per-port pairwise waiting weights w_p(f_i, f_j)
    pairwise: dict[tuple[PortRef, FlowKey, FlowKey], float] = field(
        default_factory=dict)
    qdepth: dict[PortRef, int] = field(default_factory=dict)
    paused_ports: set[PortRef] = field(default_factory=set)
    #: ports that emitted PAUSE without buffer justification (storms)
    ungrounded_pause_sources: set[PortRef] = field(default_factory=set)
    #: every pause event observed, newest last
    pause_events: list[PauseEvent] = field(default_factory=list)
    #: flows with TTL-expiry drops (forwarding-loop evidence)
    ttl_drop_flows: set[FlowKey] = field(default_factory=set)

    # ------------------------------------------------------------------
    # queries used by diagnosis and rating
    # ------------------------------------------------------------------
    def ports_of_flow(self, flow: FlowKey) -> list[PortRef]:
        """Ports the flow waits at (its e(f,p) neighbors)."""
        return [p for (f, p) in self.flow_port if f == flow]

    def flows_at_port(self, port: PortRef) -> list[FlowKey]:
        """Flows contributing to the port's congestion (e(p,f))."""
        return [f for (p, f) in self.port_flow if p == port]

    def waiting_flows_at_port(self, port: PortRef) -> list[FlowKey]:
        """Flows that wait at the port (e(f,p))."""
        return [f for (f, p) in self.flow_port if p == port]

    def downstream_ports(self, port: PortRef) -> list[PortRef]:
        """PFC causes: ports this port waits on (e(p_i, p_j) targets)."""
        return [pj for (pi, pj) in self.port_port if pi == port]

    def pairwise_weight(self, port: PortRef, fi: FlowKey,
                        fj: FlowKey) -> float:
        return self.pairwise.get((port, fi, fj), 0.0)

    def flow_pair_weight(self, fi: FlowKey, fj: FlowKey) -> float:
        """w(f_i, f_j) summed over all ports (the replay-derived
        quantity of Eq. 2)."""
        return sum(w for (p, a, b), w in self.pairwise.items()
                   if a == fi and b == fj)

    def background_flows(self) -> set[FlowKey]:
        return self.flows - self.collective_flows

    def port_port_cycles(self) -> list[list[PortRef]]:
        """Cycles in the PFC-causality edges — the deadlock signature."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_edges_from(self.port_port.keys())
        return [list(cycle) for cycle in nx.simple_cycles(graph)]

    def connected_component_from_cf(self) -> set:
        """Vertices reachable (undirected) from the collective flows —
        §III-D3's 'largest connected subgraph' evaluation scope."""
        adjacency: dict = {}

        def link(a, b):
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)

        for (f, p) in self.flow_port:
            link(("flow", f), ("port", p))
        for (p, f) in self.port_flow:
            link(("port", p), ("flow", f))
        for (pi, pj) in self.port_port:
            link(("port", pi), ("port", pj))
        seen: set = set()
        stack = [("flow", cf) for cf in self.collective_flows
                 if ("flow", cf) in adjacency]
        while stack:
            vertex = stack.pop()
            if vertex in seen:
                continue
            seen.add(vertex)
            stack.extend(adjacency.get(vertex, ()))
        return seen


def build_provenance(reports: Iterable[SwitchReport],
                     collective_flows: Iterable[FlowKey],
                     pfc_xoff_bytes: Bytes,
                     window_start: Optional[float] = None
                     ) -> ProvenanceGraph:
    """Assemble the provenance graph from a set of switch reports.

    Duplicate telemetry (the same port reported by several polls in one
    burst) is merged by taking the maximum weight per edge, so repeated
    polling never double-counts congestion.

    ``window_start`` optionally discards telemetry older than the
    anomaly window.
    """
    graph = ProvenanceGraph(collective_flows=set(collective_flows))
    #: (switch, ingress, egress) -> bytes, for port-port weights
    meters: dict[tuple[str, int, int], float] = {}
    seen_pauses: set[tuple] = set()
    #: flows observed transiting each reported port within the window
    port_window_flows: dict[PortRef, set[FlowKey]] = {}

    for report in reports:
        if window_start is not None and report.time < window_start:
            continue
        switch = report.switch_id
        for entry in report.ports:
            port = PortRef(switch, entry.port)
            graph.ports.add(port)
            graph.qdepth[port] = max(graph.qdepth.get(port, 0),
                                     entry.qdepth_pkts)
            if entry.paused:
                graph.paused_ports.add(port)
            for (fi, fj), weight in entry.wait_weights.items():
                key = (port, fi, fj)
                graph.pairwise[key] = max(graph.pairwise.get(key, 0.0),
                                          weight)
                graph.flows.update((fi, fj))
            total_pkts = entry.total_window_pkts()
            for flow, count in entry.flow_pkts.items():
                graph.flows.add(flow)
                if total_pkts > 0 and entry.qdepth_pkts > 0:
                    weight = count / total_pkts * entry.qdepth_pkts
                    key = (port, flow)
                    graph.port_flow[key] = max(
                        graph.port_flow.get(key, 0.0), weight)
            # e(f, p): a flow waits at the port if other traffic queued
            # ahead of it, if its packets sit in the queue, or if the
            # port is paused while the flow transits it
            port_window_flows.setdefault(port, set()).update(
                entry.flow_pkts)
            waiting_candidates = set(entry.inqueue_flow_pkts)
            waiting_candidates.update(
                fi for (fi, _fj) in entry.wait_weights)
            if entry.paused:
                waiting_candidates.update(entry.flow_pkts)
            for flow in waiting_candidates:
                graph.flows.add(flow)
                weight = sum(w for (fi, _fj), w
                             in entry.wait_weights.items() if fi == flow)
                key = (flow, port)
                graph.flow_port[key] = max(
                    graph.flow_port.get(key, 0.0), weight)
        for (inp, out), value in report.port_meters.items():
            key = (switch, inp, out)
            meters[key] = max(meters.get(key, 0.0), value)
        for pause in report.pause_received + report.pause_sent:
            dedup = (pause.time, str(pause.sender), str(pause.victim))
            if dedup in seen_pauses:
                continue
            seen_pauses.add(dedup)
            if window_start is not None and pause.time < window_start:
                continue
            graph.pause_events.append(pause)
            if pause.buffer_bytes_at_send < pfc_xoff_bytes:
                graph.ungrounded_pause_sources.add(pause.sender)
        for flow in report.ttl_drops:
            graph.ttl_drop_flows.add(flow)
            graph.flows.add(flow)

    graph.pause_events.sort(key=lambda e: e.time)
    _attach_pause_victims(graph, port_window_flows)
    _build_port_port_edges(graph, meters)
    return graph


def _attach_pause_victims(graph: ProvenanceGraph,
                          port_window_flows: dict[PortRef, set[FlowKey]]
                          ) -> None:
    """Give flows halted by PFC an e(f, p) edge at the victim port.

    A pause's victim may be a port whose queue had drained by report
    time (no live in-queue entries), or a host NIC (hosts report no
    telemetry at all).  Both still block the flows transiting them:
    flows observed at the port within the telemetry window, and — for a
    host-side victim — every flow originating at that host.
    """
    all_flows = graph.flows | graph.collective_flows
    for pause in graph.pause_events:
        victim = pause.victim
        graph.ports.add(victim)
        blocked = set(port_window_flows.get(victim, ()))
        blocked.update(f for f in all_flows if f.src == victim.node)
        for flow in blocked:
            graph.flows.add(flow)
            graph.flow_port.setdefault((flow, victim), 0.0)


def _build_port_port_edges(graph: ProvenanceGraph,
                           meters: dict[tuple[str, int, int], float]) -> None:
    """Turn pause causality + traffic meters into weighted e(p_i, p_j)."""
    for pause in graph.pause_events:
        upstream = pause.victim           # halted egress on switch A
        sender_switch = pause.sender.node  # switch B that sent the PAUSE
        ingress = pause.sender.port        # B's ingress from A
        graph.ports.add(upstream)
        fed = [(out, value) for (sw, inp, out), value in meters.items()
               if sw == sender_switch and inp == ingress and value > 0]
        for out, value in fed:
            downstream = PortRef(sender_switch, out)
            denominator = sum(v for (sw, _inp, o), v in meters.items()
                              if sw == sender_switch and o == out)
            if denominator <= 0:
                continue
            weight = value / denominator
            key = (upstream, downstream)
            graph.port_port[key] = max(graph.port_port.get(key, 0.0),
                                       weight)
            graph.ports.add(downstream)
