"""Step-aware adaptive anomaly detection (§III-C2, Figs. 5-8).

Per host, a :class:`DetectionAgent`:

* recomputes the RTT threshold from topology before each step starts
  (vs. Hawkeye's fixed threshold) — unless a fixed threshold is forced
  for the ablation of Fig. 13a;
* enforces a per-step detection budget and a minimum trigger spacing
  derived from the step's estimated FCT, so triggers are evenly
  distributed over the step (Fig. 5) — unless unrestricted triggering is
  forced for the ablation of Fig. 13b;
* on step completion, sends a notification packet (Fig. 6) transferring
  its unused detection opportunities to the monitor of the flow that was
  waiting on it (Fig. 7), so the slowest flow of each step accumulates
  the most opportunities;
* optionally detects fully-stalled flows (no ACK progress) with a stall
  timer — the simple fix §V proposes for pause-type anomalies that stop
  all traffic (PFC deadlock/storm) and hence produce no RTT samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.units import Nanoseconds
from repro.collective.primitives import SendStep
from repro.collective.runtime import CollectiveRuntime, StepRecord
from repro.simnet.packet import Packet
from repro.simnet.units import us

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.flow import RdmaFlow
    from repro.simnet.network import Network


@dataclass
class DetectionConfig:
    """Detection parameters (the knobs swept in Figs. 12-13)."""

    #: RTT threshold = factor x per-step base RTT (1.2 = the paper's 120%)
    rtt_threshold_factor: float = 1.2
    #: detections allowed per step per flow (Fig. 12 sweeps 1/3/5)
    detections_per_step: int = 3
    #: fixed absolute threshold overriding the per-step computation
    #: (Fig. 13a ablation); None = step-aware thresholds
    fixed_rtt_threshold_ns: Optional[Nanoseconds] = None
    #: transfer leftover opportunities via notification packets (Fig. 7)
    adaptive_transfer: bool = True
    #: enforce the even-spacing trigger interval (Fig. 5); False =
    #: unrestricted triggering (Fig. 13b ablation / Hawkeye-like)
    restrict_trigger_interval: bool = True
    #: hard floor between consecutive triggers even when unrestricted
    min_trigger_gap_ns: Nanoseconds = us(10)
    #: detect stalled flows (no ACK for stall_factor x threshold)
    stall_detection: bool = True
    stall_factor: float = 5.0


@dataclass
class TriggerEvent:
    """One anomaly-detection trigger (for tests and overhead analysis)."""

    time: Nanoseconds
    node: str
    step_index: int
    rtt_ns: Nanoseconds
    threshold_ns: Nanoseconds
    poll_id: str
    stall: bool = False


class DetectionAgent:
    """Per-host detection agent (Fig. 8's algorithmic flow)."""

    def __init__(self, network: "Network", node: str,
                 runtime: CollectiveRuntime,
                 config: Optional[DetectionConfig] = None) -> None:
        self.network = network
        self.node = node
        self.runtime = runtime
        self.config = config or DetectionConfig()
        self.budget = 0
        self.carried_in = 0          # opportunities received via NOTIFY
        self.threshold_ns: Optional[float] = None
        self.trigger_interval_ns: Optional[float] = None
        self.last_trigger_time = -1e18
        self.last_ack_time = -1e18
        self.triggers: list[TriggerEvent] = []
        self._active_step: Optional[SendStep] = None
        self._active_flow: Optional["RdmaFlow"] = None
        self._stall_event = None
        self._wire()

    def _wire(self) -> None:
        self.runtime.step_start_listeners.append(self._on_step_start)
        self.runtime.step_end_listeners.append(self._on_step_end)
        self.network.hosts[self.node].notify_handlers.append(self._on_notify)

    # ------------------------------------------------------------------
    # step lifecycle
    # ------------------------------------------------------------------
    def _on_step_start(self, step: SendStep, flow: "RdmaFlow",
                       waiting_source: Optional[str], now: float) -> None:
        if step.node != self.node:
            return
        cfg = self.config
        self._active_step = step
        self._active_flow = flow
        self.budget = cfg.detections_per_step + self.carried_in
        self.carried_in = 0
        self.threshold_ns = self._compute_threshold(step)
        estimated_fct = self.runtime.expected_step_time_ns(step)
        if cfg.restrict_trigger_interval and cfg.detections_per_step > 0:
            self.trigger_interval_ns = estimated_fct / \
                cfg.detections_per_step
        else:
            self.trigger_interval_ns = cfg.min_trigger_gap_ns
        self.last_ack_time = now
        flow.rtt_observers.append(self._on_rtt_sample)
        if cfg.stall_detection:
            self._arm_stall_timer()

    def _compute_threshold(self, step: SendStep) -> float:
        cfg = self.config
        if cfg.fixed_rtt_threshold_ns is not None:
            return cfg.fixed_rtt_threshold_ns
        key = self.runtime.flow_keys[(step.node, step.step_index)]
        base = self.network.routing.base_rtt_ns(
            step.node, step.peer, flow=key,
            packet_bytes=self.network.config.mtu_payload_bytes + 66)
        return cfg.rtt_threshold_factor * base

    def _on_step_end(self, record: StepRecord) -> None:
        if record.node != self.node:
            return
        if self._active_step is not None \
                and self._active_step.step_index == record.step_index:
            remaining = self.budget
            self._active_step = None
            self._active_flow = None
            self._disarm_stall_timer()
            if self.config.adaptive_transfer and remaining > 0:
                self._transfer_opportunities(record, remaining)

    def _transfer_opportunities(self, record: StepRecord,
                                remaining: int) -> None:
        """Fig. 7: hand unused opportunities to the waiting monitor."""
        step = self.runtime.schedule.step(record.node, record.step_index)
        target = step.peer
        if target == self.node:
            return
        self.network.send_notify(self.node, target, {
            "kind": "detection_opportunities",
            "count": remaining,
            "from_step": record.step_index,
        })

    def _on_notify(self, packet: Packet) -> None:
        payload = packet.payload
        if payload.get("kind") != "detection_opportunities":
            return
        count = int(payload.get("count", 0))
        if self._active_step is not None:
            self.budget += count
        else:
            self.carried_in += count

    # ------------------------------------------------------------------
    # triggering
    # ------------------------------------------------------------------
    def _on_rtt_sample(self, flow: "RdmaFlow", rtt_ns: float, seq: int,
                       now: float) -> None:
        self.last_ack_time = now
        if self._active_flow is not flow or self.threshold_ns is None:
            return
        if rtt_ns <= self.threshold_ns:
            return
        self._maybe_trigger(rtt_ns, now, stall=False)

    def _maybe_trigger(self, rtt_ns: float, now: float, stall: bool) -> None:
        if self.budget <= 0:
            return
        gap = now - self.last_trigger_time
        if gap < self.config.min_trigger_gap_ns:
            return
        if self.config.restrict_trigger_interval \
                and self.trigger_interval_ns is not None \
                and gap < self.trigger_interval_ns:
            return
        step = self._active_step
        if step is None:
            return
        key = self.runtime.flow_keys[(step.node, step.step_index)]
        poll_id = self.network.poll_flow(key)
        self.budget -= 1
        self.last_trigger_time = now
        self.triggers.append(TriggerEvent(
            time=now, node=self.node, step_index=step.step_index,
            rtt_ns=rtt_ns, threshold_ns=self.threshold_ns or 0.0,
            poll_id=poll_id, stall=stall))

    # ------------------------------------------------------------------
    # stall detection (§V extensibility)
    # ------------------------------------------------------------------
    def _stall_timeout_ns(self) -> float:
        threshold = self.threshold_ns or us(100)
        return self.config.stall_factor * threshold

    def _arm_stall_timer(self) -> None:
        self._disarm_stall_timer()
        self._stall_event = self.network.sim.schedule(
            self._stall_timeout_ns(), self._check_stall)

    def _disarm_stall_timer(self) -> None:
        if self._stall_event is not None:
            self._stall_event.cancel()
            self._stall_event = None

    def _check_stall(self) -> None:
        self._stall_event = None
        if self._active_flow is None:
            return
        now = self.network.sim.now
        idle = now - self.last_ack_time
        if idle >= self._stall_timeout_ns():
            self._maybe_trigger(idle, now, stall=True)
        self._arm_stall_timer()
