"""The centralized analyzer (§III-A, §III-D).

Consumes the host monitors' step records and the switches' telemetry
reports, then produces a structured diagnosis:

1. build the waiting graph, compute the critical path and the
   performance-bottleneck steps;
2. build per-step and overall network provenance graphs from the
   collected reports;
3. run the signature detectors for the anomaly breakdown;
4. rate contributor flows (Eqs. 1-3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.core.units import Bytes
from repro.collective.runtime import CollectiveRuntime, StepRecord
from repro.core.diagnosis import DiagnosisResult, diagnose
from repro.core.provenance import ProvenanceGraph, build_provenance
from repro.core.rating import (
    contribution_to_collective,
    contribution_to_flow,
)
from repro.core.waiting_graph import CriticalPathEntry, WaitingGraph
from repro.simnet.packet import FlowKey
from repro.simnet.telemetry import SwitchReport


@dataclass
class VedrfolnirDiagnosis:
    """The analyzer's structured output."""

    waiting_graph: WaitingGraph
    critical_path: list[CriticalPathEntry]
    #: steps whose critical flow ran slower than slowdown_factor x ideal
    bottleneck_steps: list[int]
    provenance: ProvenanceGraph
    step_provenance: dict[int, ProvenanceGraph]
    result: DiagnosisResult
    #: Eq. 3 score per non-collective flow
    collective_scores: dict[FlowKey, float] = field(default_factory=dict)
    #: Eq. 2 score of each background flow against each critical flow
    per_flow_scores: dict[tuple[FlowKey, FlowKey], float] = field(
        default_factory=dict)

    @property
    def detected_flows(self) -> set[FlowKey]:
        return self.result.detected_flows

    def top_contributors(self, n: int = 5) -> list[tuple[FlowKey, float]]:
        ranked = sorted(self.collective_scores.items(),
                        key=lambda kv: -kv[1])
        return ranked[:n]

    def summary(self) -> str:
        """Operator-facing text summary."""
        lines = [
            f"collective steps analysed: {len(self.waiting_graph.records)}",
            f"critical path length: {len(self.critical_path)} steps",
            f"bottleneck steps: {self.bottleneck_steps}",
            f"findings: {len(self.result.findings)}",
        ]
        for finding in self.result.findings:
            lines.append(f"  - {finding.type.value}: {finding.detail}")
        for flow, score in self.top_contributors():
            lines.append(f"  contributor {flow.short()}: {score:,.0f}")
        return "\n".join(lines)


class VedrfolnirAnalyzer:
    """Collects monitoring data and produces diagnoses."""

    def __init__(self, pfc_xoff_bytes: Bytes,
                 slowdown_factor: float = 1.5) -> None:
        self.pfc_xoff_bytes = pfc_xoff_bytes
        self.slowdown_factor = slowdown_factor
        self.step_records: list[StepRecord] = []
        self.reports: list[SwitchReport] = []

    # data ingestion -----------------------------------------------------
    def add_step_record(self, record: StepRecord) -> None:
        self.step_records.append(record)

    def add_report(self, report: SwitchReport) -> None:
        self.reports.append(report)

    # analysis -----------------------------------------------------------
    def analyze(self, runtime: CollectiveRuntime) -> VedrfolnirDiagnosis:
        waiting = WaitingGraph(runtime.schedule, self.step_records,
                               mode="binding")
        critical_path = waiting.critical_path()

        exec_times = waiting.step_execution_times()
        expect_times: dict[int, float] = {}
        critical_nodes = waiting.critical_flows_by_step()
        critical_flow_keys: dict[int, FlowKey] = {}
        for idx, node in critical_nodes.items():
            step = runtime.schedule.step(node, idx)
            expect_times[idx] = runtime.expected_step_time_ns(step)
            key = runtime.flow_keys.get((node, idx))
            if key is not None:
                critical_flow_keys[idx] = key
        bottlenecks = [idx for idx, t in exec_times.items()
                       if t > self.slowdown_factor
                       * expect_times.get(idx, float("inf"))]
        bottlenecks.sort()

        cf_keys = runtime.collective_flow_keys
        overall = build_provenance(self.reports, cf_keys,
                                   self.pfc_xoff_bytes)
        step_graphs = self._per_step_graphs(runtime, cf_keys)
        result = diagnose(overall)

        per_flow_scores: dict[tuple[FlowKey, FlowKey], float] = {}
        collective_scores: dict[FlowKey, float] = {}
        for flow in sorted(overall.background_flows(),
                           key=lambda f: f.short()):
            for idx, cf in critical_flow_keys.items():
                graph = step_graphs.get(idx, overall)
                per_flow_scores[(flow, cf)] = contribution_to_flow(
                    graph, flow, cf)
            collective_scores[flow] = contribution_to_collective(
                flow, step_graphs or {0: overall}, critical_flow_keys,
                exec_times, expect_times)

        return VedrfolnirDiagnosis(
            waiting_graph=waiting,
            critical_path=critical_path,
            bottleneck_steps=bottlenecks,
            provenance=overall,
            step_provenance=step_graphs,
            result=result,
            collective_scores=collective_scores,
            per_flow_scores=per_flow_scores,
        )

    def _per_step_graphs(self, runtime: CollectiveRuntime,
                         cf_keys: set[FlowKey]
                         ) -> dict[int, ProvenanceGraph]:
        """Slice reports into per-step provenance graphs by timestamp."""
        windows: dict[int, list[float]] = {}
        for record in self.step_records:
            window = windows.setdefault(record.step_index,
                                        [record.start_time,
                                         record.end_time])
            window[0] = min(window[0], record.start_time)
            window[1] = max(window[1], record.end_time)
        graphs: dict[int, ProvenanceGraph] = {}
        for idx, (start, end) in windows.items():
            step_reports = [r for r in self.reports
                            if start <= r.time <= end]
            if step_reports:
                graphs[idx] = build_provenance(
                    step_reports, cf_keys, self.pfc_xoff_bytes)
        return graphs
