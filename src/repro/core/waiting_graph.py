"""The waiting graph (§III-B, Fig. 4).

Vertices are the start and end of each step of each flow (``F_i S_j``).
Directed edges point in the *waits-on* direction (A → B means "A waits
for B"), matching the paper's orientation where the end of the final
steps is the graph's source and the start of the first steps the sink:

* **dark** edges: ``end(F_i S_j) → start(F_i S_j)``, weighted by the
  step's execution time;
* **orange** edges: ``start(F_i S_j) → end(F_i S_{j-1})``, weight 0
  (intra-flow ordering);
* **blue** edges: ``start(F_i S_j) → end(F_k S_{j-1})``, weight 0
  (data dependency).

Two construction modes mirror the paper's definition vs. its runtime use:

* ``full``: every structural edge of the decomposition;
* ``binding``: only the light edge that *actually* gated each start
  (§III-C1: "F1S2 waits for both ... but actually waits for only one of
  them").  In-degree-zero pruning (Fig. 14a) and the critical path are
  computed on this mode.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.units import Nanoseconds
from repro.collective.primitives import StepSchedule
from repro.collective.runtime import StepRecord


class EdgeKind(enum.Enum):
    """Edge colors from Fig. 4."""

    EXECUTION = "dark"       # end -> start of the same step
    INTRA_FLOW = "orange"    # start -> end of the node's previous step
    DATA_DEP = "blue"        # start -> end of the dependency step


@dataclass(frozen=True)
class WaitingVertex:
    """Start or end of one step of one flow."""

    node: str
    step_index: int
    point: str  # "start" | "end"

    @property
    def label(self) -> str:
        return f"F[{self.node}]S{self.step_index}.{self.point}"

    def __str__(self) -> str:
        return self.label


@dataclass
class WaitingEdge:
    src: WaitingVertex
    dst: WaitingVertex
    kind: EdgeKind
    weight_ns: Nanoseconds = 0.0


@dataclass
class CriticalPathEntry:
    """One step on the critical path."""

    node: str
    step_index: int
    start_time: float
    end_time: float
    #: why this step's start waited: "recv", "prev_send" or None
    entered_via: Optional[str]

    @property
    def duration_ns(self) -> float:
        return self.end_time - self.start_time


class WaitingGraph:
    """Waiting graph over a set of completed (or partial) step records."""

    def __init__(self, schedule: StepSchedule,
                 records: Iterable[StepRecord],
                 mode: str = "binding") -> None:
        if mode not in ("binding", "full"):
            raise ValueError(f"unknown mode {mode!r}")
        self.schedule = schedule
        self.mode = mode
        self.records: dict[tuple[str, int], StepRecord] = {
            (r.node, r.step_index): r for r in records}
        self.vertices: set[WaitingVertex] = set()
        self.edges: list[WaitingEdge] = []
        self._build()

    # ------------------------------------------------------------------
    def _vertex(self, node: str, step: int, point: str) -> WaitingVertex:
        vertex = WaitingVertex(node, step, point)
        self.vertices.add(vertex)
        return vertex

    def _build(self) -> None:
        for (node, idx), record in self.records.items():
            start = self._vertex(node, idx, "start")
            end = self._vertex(node, idx, "end")
            self.edges.append(WaitingEdge(
                end, start, EdgeKind.EXECUTION, record.duration_ns))
            step = self.schedule.step(node, idx)
            want_orange = idx > 0 and (node, idx - 1) in self.records
            want_blue = (step.depends_on is not None
                         and step.depends_on in self.records)
            if self.mode == "binding":
                binding = record.binding_dependency
                if binding == "recv":
                    want_orange = False
                elif binding == "prev_send":
                    want_blue = False
                # binding None: both became ready simultaneously (or at
                # launch); keep whatever structural edges exist
            if want_orange:
                prev_end = self._vertex(node, idx - 1, "end")
                self.edges.append(WaitingEdge(
                    start, prev_end, EdgeKind.INTRA_FLOW, 0.0))
            if want_blue:
                dep_node, dep_idx = step.depends_on
                dep_end = self._vertex(dep_node, dep_idx, "end")
                self.edges.append(WaitingEdge(
                    start, dep_end, EdgeKind.DATA_DEP, 0.0))

    # ------------------------------------------------------------------
    def in_degree(self) -> dict[WaitingVertex, int]:
        degrees = {v: 0 for v in self.vertices}
        for edge in self.edges:
            degrees[edge.dst] = degrees.get(edge.dst, 0) + 1
        return degrees

    def prune_unwaited(self) -> int:
        """Recursively remove vertices nobody waits on (Fig. 14a), except
        the vertex of the globally last-ending step (the completion
        point the whole collective 'waits' on).  Returns the number of
        removed vertices."""
        keep = self._latest_end_vertex()
        removed_total = 0
        while True:
            degrees = self.in_degree()
            doomed = {v for v, d in degrees.items()
                      if d == 0 and v != keep}
            if not doomed:
                return removed_total
            removed_total += len(doomed)
            self.vertices -= doomed
            self.edges = [e for e in self.edges
                          if e.src not in doomed and e.dst not in doomed]

    def _latest_end_vertex(self) -> Optional[WaitingVertex]:
        latest_key = None
        latest_time = -1.0
        for key, record in self.records.items():
            if record.end_time > latest_time:
                latest_time = record.end_time
                latest_key = key
        if latest_key is None:
            return None
        return WaitingVertex(latest_key[0], latest_key[1], "end")

    # ------------------------------------------------------------------
    def critical_path(self) -> list[CriticalPathEntry]:
        """The chain of steps that determined total execution time
        (§III-D1): walk back from the last-ending step through each
        start's binding predecessor."""
        if not self.records:
            return []
        key = max(self.records, key=lambda k: self.records[k].end_time)
        path: list[CriticalPathEntry] = []
        visited: set[tuple[str, int]] = set()
        while key is not None and key not in visited:
            visited.add(key)
            record = self.records[key]
            path.append(CriticalPathEntry(
                node=record.node,
                step_index=record.step_index,
                start_time=record.start_time,
                end_time=record.end_time,
                entered_via=record.binding_dependency,
            ))
            key = self._predecessor_of(record)
        path.reverse()
        return path

    def _predecessor_of(self, record: StepRecord
                        ) -> Optional[tuple[str, int]]:
        step = self.schedule.step(record.node, record.step_index)
        binding = record.binding_dependency
        if binding == "recv" and step.depends_on is not None:
            return step.depends_on if step.depends_on in self.records \
                else None
        if record.step_index > 0:
            prev = (record.node, record.step_index - 1)
            return prev if prev in self.records else None
        return None

    def critical_flows_by_step(self) -> dict[int, str]:
        """For each step index, the node whose flow is on the critical
        path at that step (cf_i in Eq. 3).  Falls back to the
        slowest-duration flow for step indices the critical path skips."""
        result: dict[int, str] = {}
        for entry in self.critical_path():
            result[entry.step_index] = entry.node
        all_indices = {idx for (_, idx) in self.records}
        for idx in all_indices - set(result):
            slowest = max(
                (r for (n, i), r in self.records.items() if i == idx),
                key=lambda r: r.duration_ns)
            result[idx] = slowest.node
        return result

    def step_execution_times(self) -> dict[int, float]:
        """exec_time(i) of Eq. 3: duration of the critical flow's step."""
        critical = self.critical_flows_by_step()
        return {idx: self.records[(node, idx)].duration_ns
                for idx, node in critical.items()
                if (node, idx) in self.records}

    def total_time_ns(self) -> float:
        if not self.records:
            return 0.0
        start = min(r.start_time for r in self.records.values())
        end = max(r.end_time for r in self.records.values())
        return end - start

    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export to a networkx.DiGraph for analysis or visualization."""
        import networkx as nx

        graph = nx.DiGraph()
        for vertex in self.vertices:
            graph.add_node(vertex.label, node=vertex.node,
                           step=vertex.step_index, point=vertex.point)
        for edge in self.edges:
            graph.add_edge(edge.src.label, edge.dst.label,
                           kind=edge.kind.value, weight=edge.weight_ns)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"WaitingGraph({len(self.vertices)} vertices, "
                f"{len(self.edges)} edges, mode={self.mode})")
