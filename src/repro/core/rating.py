"""Contributor rating (§III-D3, Eqs. 1-3).

Quantifies how much each non-collective flow contributed to the slowdown
of a collective flow (Eq. 2) and of the whole collective (Eq. 3), so an
operator knows which background traffic to act on first.
"""

from __future__ import annotations

from typing import Optional

from repro.core.provenance import ProvenanceGraph
from repro.simnet.packet import FlowKey
from repro.simnet.pfc import PortRef


def contribution_to_port(graph: ProvenanceGraph, flow: FlowKey,
                         port: PortRef,
                         _memo: Optional[dict] = None,
                         _visiting: Optional[set] = None) -> float:
    """Eq. 1: R(f_i, p_j) = w(p_j, f_i) + Σ R(f_i, p_k) * w(p_j, p_k)
    over PFC-causality edges e(p_j, p_k).

    Computed by memoized traversal along the direction of being waited
    for; cycles (PFC deadlock) contribute only their local term.
    """
    memo = _memo if _memo is not None else {}
    visiting = _visiting if _visiting is not None else set()
    key = (flow, port)
    if key in memo:
        return memo[key]
    local = graph.port_flow.get((port, flow), 0.0)
    if port in visiting:       # cycle guard
        return local
    visiting.add(port)
    total = local
    for downstream in graph.downstream_ports(port):
        weight = graph.port_port[(port, downstream)]
        total += weight * contribution_to_port(
            graph, flow, downstream, memo, visiting)
    visiting.discard(port)
    memo[key] = total
    return total


def contribution_to_flow(graph: ProvenanceGraph, flow: FlowKey,
                         cf: FlowKey) -> float:
    """Eq. 2: contribution of ``flow`` to collective flow ``cf``.

    Over cf's neighboring ports P_cf: when ``flow`` and ``cf`` directly
    contend at p_k (indicator), the direct impact is the pairwise
    queueing-ahead weight w(cf, f_i) instead of the port-level
    w(p_k, f_i); the transitive impact R(f_i, p_k) is always added.
    """
    if flow == cf:
        return 0.0
    memo: dict = {}
    total = 0.0
    for port in graph.ports_of_flow(cf):
        transitive = contribution_to_port(graph, flow, port, memo)
        total += transitive
        if (flow, port) in graph.flow_port:   # I(e(f_i, p_k) ∈ E)
            w_cf_fi = graph.pairwise_weight(port, cf, flow)
            w_pk_fi = graph.port_flow.get((port, flow), 0.0)
            total += w_cf_fi - w_pk_fi
    return total


def contribution_to_collective(
        flow: FlowKey,
        step_graphs: dict[int, ProvenanceGraph],
        critical_flow_keys: dict[int, FlowKey],
        exec_times: dict[int, float],
        expect_times: dict[int, float]) -> float:
    """Eq. 3: weight per-step contributions by each step's share of the
    total excess execution time.

    ``critical_flow_keys[i]`` is cf_i, the critical flow of step ``i``;
    steps that ran no slower than expected get zero weight.
    """
    excess = {i: max(0.0, exec_times.get(i, 0.0) - expect_times.get(i, 0.0))
              for i in step_graphs}
    denominator = sum(excess.values())
    if denominator <= 0:
        return 0.0
    total = 0.0
    for i, graph in step_graphs.items():
        cf_i = critical_flow_keys.get(i)
        if cf_i is None or excess[i] <= 0:
            continue
        score = contribution_to_flow(graph, flow, cf_i)
        total += score * excess[i] / denominator
    return total


def rate_contributors(graph: ProvenanceGraph,
                      cf: FlowKey) -> dict[FlowKey, float]:
    """Eq. 2 for every non-collective flow in the CF-connected component,
    sorted descending — the operator-facing ranking."""
    component = graph.connected_component_from_cf()
    candidates = {f for kind, f in component
                  if kind == "flow" and f not in graph.collective_flows}
    scores = {flow: contribution_to_flow(graph, flow, cf)
              for flow in candidates}
    return dict(sorted(scores.items(), key=lambda kv: -kv[1]))
