"""Named, seeded failpoints: deterministic fault injection at
annotated sites.

Collie's lesson (PAPERS.md) is that the faults worth testing are the
ones nobody hand-picked — so the harness needs a way to inject
failures *systematically* at any annotated site, reproducibly, from
either an environment variable or a programmatic call.  A failpoint is
a named site in production code::

    from repro.core import failpoints

    failpoints.fire("checkpoint.save")            # control sites
    data = failpoints.mangle("transport.send", data)  # payload sites

Sites are **free when unconfigured**: both entry points return
immediately off one empty-dict check, so an always-on service pays a
dict lookup's worth of overhead only while an experiment is running
(and nothing at all is mutated — golden digests pin this).

Specs select what happens at a site, from the ``REPRO_FAILPOINTS``
environment variable or :func:`configure`::

    REPRO_FAILPOINTS="checkpoint.save:error@0.5x3,transport.send:drop"

Grammar (per comma-separated spec)::

    name:action[(value)][@probability][xlimit]

* ``error``           — raise :class:`FailpointError` (an ``OSError``,
  so production retry / fallback paths treat it as a real I/O fault);
* ``delay(seconds)``  — sleep that long, then continue;
* ``drop``            — ask the site to skip the operation
  (:func:`fire` returns ``"drop"``; :func:`mangle` returns ``None``);
* ``truncate[(n)]``   — cut the payload to ``n`` bytes (default:
  half), payload sites only;
* ``garble``          — flip one seeded byte of the payload, payload
  sites only.

``@probability`` arms the spec stochastically per evaluation (seeded —
the per-site RNG is ``random.Random(seed ^ crc32(name))``, so the same
configuration replays the same fault schedule) and ``xlimit`` caps the
total number of firings.  Both default to "always".
"""

from __future__ import annotations

import os
import re
import threading
import time
import zlib
from dataclasses import dataclass
from random import Random
from typing import Optional, Union

#: environment variable holding comma-separated failpoint specs
ENV_VAR = "REPRO_FAILPOINTS"

#: actions understood by control sites (:func:`fire`)
FIRE_ACTIONS = frozenset({"error", "delay", "drop"})
#: actions understood by payload sites (:func:`mangle`)
MANGLE_ACTIONS = frozenset({"error", "delay", "drop", "truncate",
                            "garble"})

_SPEC_RE = re.compile(
    r"^(?P<name>[A-Za-z0-9_.-]+)"
    r":(?P<action>[a-z]+)"
    r"(?:\((?P<value>[^)]*)\))?"
    r"(?:@(?P<prob>[0-9.]+))?"
    r"(?:x(?P<limit>[0-9]+))?$")


class FailpointError(OSError):
    """The injected failure.  An :class:`OSError` subclass so that
    retry / fallback code paths written for real I/O faults exercise
    under injection without special-casing."""


@dataclass(frozen=True)
class FailpointSpec:
    """One parsed ``name:action[(value)][@prob][xlimit]`` spec."""

    name: str
    action: str
    value: float = 0.0
    probability: float = 1.0
    #: maximum number of firings; 0 = unlimited
    limit: int = 0

    @classmethod
    def parse(cls, text: str) -> "FailpointSpec":
        match = _SPEC_RE.match(text.strip())
        if match is None:
            raise ValueError(f"unparseable failpoint spec {text!r} "
                             f"(want name:action[(value)][@prob]"
                             f"[xlimit])")
        action = match.group("action")
        if action not in MANGLE_ACTIONS:
            raise ValueError(
                f"unknown failpoint action {action!r} in {text!r} "
                f"(known: {', '.join(sorted(MANGLE_ACTIONS))})")
        value = float(match.group("value")) if match.group("value") \
            else 0.0
        probability = float(match.group("prob")) \
            if match.group("prob") else 1.0
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"failpoint probability {probability!r} "
                             f"outside [0, 1] in {text!r}")
        limit = int(match.group("limit")) if match.group("limit") else 0
        return cls(name=match.group("name"), action=action,
                   value=value, probability=probability, limit=limit)

    def to_text(self) -> str:
        text = f"{self.name}:{self.action}"
        if self.value:
            text += f"({self.value:g})"
        if self.probability < 1.0:
            text += f"@{self.probability:g}"
        if self.limit:
            text += f"x{self.limit}"
        return text


def parse_specs(text: str) -> dict[str, FailpointSpec]:
    """Parse a comma-separated spec list (the ``REPRO_FAILPOINTS``
    payload) into a name -> spec map."""
    specs: dict[str, FailpointSpec] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        spec = FailpointSpec.parse(part)
        specs[spec.name] = spec
    return specs


class _Armed:
    """One configured failpoint: its spec, seeded RNG, fire counter."""

    def __init__(self, spec: FailpointSpec, seed: int) -> None:
        self.spec = spec
        self.rng = Random(seed ^ zlib.crc32(spec.name.encode("utf-8")))
        self.fires = 0

    def should_fire(self) -> bool:
        if self.spec.limit and self.fires >= self.spec.limit:
            return False
        if self.spec.probability < 1.0 \
                and self.rng.random() >= self.spec.probability:
            return False
        return True


#: the active registry; empty == failpoints disabled (the fast path)
_ARMED: dict[str, _Armed] = {}
_LOCK = threading.Lock()


def configure(specs: Union[str, dict[str, FailpointSpec], None],
              seed: int = 0) -> None:
    """Replace the active failpoint set (``None``/empty clears it)."""
    global _ARMED
    if specs is None:
        parsed: dict[str, FailpointSpec] = {}
    elif isinstance(specs, str):
        parsed = parse_specs(specs)
    else:
        parsed = dict(specs)
    with _LOCK:
        _ARMED = {name: _Armed(spec, seed)
                  for name, spec in parsed.items()}


def configure_from_env(environ=None, seed: int = 0) -> bool:
    """Arm failpoints from ``REPRO_FAILPOINTS`` if set; returns
    whether anything was armed.  Unset/empty is a no-op (the registry
    keeps its current state), so library code may call this freely."""
    environ = os.environ if environ is None else environ
    text = environ.get(ENV_VAR, "")
    if not text.strip():
        return False
    configure(text, seed=seed)
    return True


def clear() -> None:
    """Disarm every failpoint (restores the zero-overhead path)."""
    configure(None)


def active() -> bool:
    return bool(_ARMED)


def snapshot() -> dict[str, int]:
    """Fire counts per armed failpoint (test/observability hook)."""
    with _LOCK:
        return {name: armed.fires for name, armed in _ARMED.items()}


def _evaluate(name: str) -> Optional[FailpointSpec]:
    """Roll the site's spec; returns it if it fires this time."""
    armed = _ARMED.get(name)
    if armed is None:
        return None
    with _LOCK:
        if not armed.should_fire():
            return None
        armed.fires += 1
        return armed.spec


def fire(name: str, sleep=time.sleep) -> Optional[str]:
    """Evaluate a control site.  Returns the action that fired
    (``"drop"`` asks the caller to skip the operation), ``None`` when
    nothing fired; ``error`` raises, ``delay`` sleeps."""
    if not _ARMED:
        return None
    spec = _evaluate(name)
    if spec is None:
        return None
    if spec.action == "error":
        raise FailpointError(f"failpoint {name!r}: injected error")
    if spec.action == "delay":
        sleep(spec.value)
        return "delay"
    return spec.action


def mangle(name: str, payload: bytes,
           sleep=time.sleep) -> Optional[bytes]:
    """Evaluate a payload site.  Returns the (possibly mutated)
    payload, or ``None`` when the payload should be dropped;
    ``error`` raises, ``delay`` sleeps and passes through."""
    if not _ARMED:
        return payload
    armed = _ARMED.get(name)
    if armed is None:
        return payload
    with _LOCK:
        if not armed.should_fire():
            return payload
        armed.fires += 1
        spec = armed.spec
        # draw corruption parameters under the lock so concurrent
        # sites keep the per-failpoint RNG stream deterministic
        garble_at = armed.rng.randrange(len(payload)) if payload \
            and spec.action == "garble" else 0
    if spec.action == "error":
        raise FailpointError(f"failpoint {name!r}: injected error")
    if spec.action == "delay":
        sleep(spec.value)
        return payload
    if spec.action == "drop":
        return None
    if spec.action == "truncate":
        keep = int(spec.value) if spec.value else len(payload) // 2
        return payload[:max(0, keep)]
    if not payload:
        return payload
    garbled = bytearray(payload)
    garbled[garble_at] ^= 0xFF
    return bytes(garbled)


__all__ = [
    "ENV_VAR",
    "FailpointError",
    "FailpointSpec",
    "parse_specs",
    "configure",
    "configure_from_env",
    "clear",
    "active",
    "snapshot",
    "fire",
    "mangle",
]
