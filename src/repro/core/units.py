"""Typed unit-of-measure layer for the reproduction.

The simulator measures time in nanoseconds, sizes in bytes, and rates in
bits per second — but quantities cross many module boundaries on their
way from a scenario config to a diagnosis (2 us link delay, 50 us
telemetry retention, 100 Gbps links), and a microseconds magnitude bound
to a nanoseconds parameter corrupts RTT thresholds and contributor
ratings without failing any test.  This module makes the unit part of a
signature's *contract*:

* :data:`Nanoseconds`, :data:`Microseconds`, :data:`Seconds`,
  :data:`Bytes`, :data:`Gbps`, ... are :func:`typing.NewType` aliases —
  free at runtime, but visible to the interprocedural dataflow pass in
  :mod:`repro.checks.units` (``repro check --units``), which propagates
  them through assignments, arithmetic, returns and call arguments;
* ``us_to_ns``, ``ns_to_s``, ``bytes_to_bits``, ... are *checked
  converters*: the only sanctioned way to change scale.  They validate
  their input and carry precise unit signatures, so a conversion done
  through them is understood by the checker while a raw ``* 1000.0``
  is flagged (rule RPR013 in scope).

Annotation guidelines (see also ``docs/CHECKS.md``):

* every public time/size/rate parameter in ``repro.simnet``,
  ``repro.core`` and ``repro.live`` must carry one of these NewTypes
  (rule RPR012);
* construct magnitudes with :mod:`repro.simnet.units` helpers
  (``us(2)`` is 2 us expressed in ns) and convert with the checked
  converters here — never with bare ``1e3`` / ``1e9`` / ``8`` factors.

This module must stay dependency-free (stdlib only): it is imported
from ``repro.simnet`` at runtime, below everything else in the package
graph.
"""

from __future__ import annotations

import math
from typing import NewType

__all__ = [
    "Seconds", "Milliseconds", "Microseconds", "Nanoseconds",
    "Bytes", "Bits", "BitsPerSecond", "Gbps", "Dimensionless",
    "s_to_ms", "ms_to_s", "s_to_us", "us_to_s", "s_to_ns", "ns_to_s",
    "ms_to_ns", "ns_to_ms", "us_to_ns", "ns_to_us",
    "bytes_to_bits", "bits_to_bytes",
    "gbps_to_bps", "bps_to_gbps",
]

# -- magnitude types ---------------------------------------------------
#: wall of simulated time, in seconds
Seconds = NewType("Seconds", float)
#: simulated time, in milliseconds
Milliseconds = NewType("Milliseconds", float)
#: simulated time, in microseconds
Microseconds = NewType("Microseconds", float)
#: simulated time, in nanoseconds — the engine's native unit
Nanoseconds = NewType("Nanoseconds", float)
#: data size in bytes — the data plane's native unit
Bytes = NewType("Bytes", int)
#: data size in bits (telemetry / rate arithmetic)
Bits = NewType("Bits", int)
#: rate in bits per second — the link model's native unit
BitsPerSecond = NewType("BitsPerSecond", float)
#: rate in gigabits per second (paper-facing configuration)
Gbps = NewType("Gbps", float)
#: explicitly unitless quantity (ratios, weights, counts-as-float)
Dimensionless = NewType("Dimensionless", float)


def _finite(value: float, converter: str) -> float:
    """Reject NaN/inf magnitudes before they poison a threshold."""
    if not math.isfinite(value):
        raise ValueError(
            f"{converter}: magnitude must be finite, got {value!r}")
    return value


def _count(value: int, converter: str) -> int:
    """Reject non-integral or bool 'counts' (bytes / bits)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(
            f"{converter}: expected an integral count, got {value!r}")
    return value


# -- time --------------------------------------------------------------
def s_to_ms(value: Seconds) -> Milliseconds:
    """Seconds to milliseconds."""
    return Milliseconds(_finite(value, "s_to_ms") * 1_000.0)


def ms_to_s(value: Milliseconds) -> Seconds:
    """Milliseconds to seconds."""
    return Seconds(_finite(value, "ms_to_s") / 1_000.0)


def s_to_us(value: Seconds) -> Microseconds:
    """Seconds to microseconds."""
    return Microseconds(_finite(value, "s_to_us") * 1_000_000.0)


def us_to_s(value: Microseconds) -> Seconds:
    """Microseconds to seconds."""
    return Seconds(_finite(value, "us_to_s") / 1_000_000.0)


def s_to_ns(value: Seconds) -> Nanoseconds:
    """Seconds to nanoseconds."""
    return Nanoseconds(_finite(value, "s_to_ns") * 1_000_000_000.0)


def ns_to_s(value: Nanoseconds) -> Seconds:
    """Nanoseconds to seconds."""
    return Seconds(_finite(value, "ns_to_s") / 1_000_000_000.0)


def ms_to_ns(value: Milliseconds) -> Nanoseconds:
    """Milliseconds to nanoseconds."""
    return Nanoseconds(_finite(value, "ms_to_ns") * 1_000_000.0)


def ns_to_ms(value: Nanoseconds) -> Milliseconds:
    """Nanoseconds to milliseconds."""
    return Milliseconds(_finite(value, "ns_to_ms") / 1_000_000.0)


def us_to_ns(value: Microseconds) -> Nanoseconds:
    """Microseconds to nanoseconds."""
    return Nanoseconds(_finite(value, "us_to_ns") * 1_000.0)


def ns_to_us(value: Nanoseconds) -> Microseconds:
    """Nanoseconds to microseconds."""
    return Microseconds(_finite(value, "ns_to_us") / 1_000.0)


# -- data size ---------------------------------------------------------
def bytes_to_bits(value: Bytes) -> Bits:
    """Bytes to bits."""
    return Bits(_count(value, "bytes_to_bits") * 8)


def bits_to_bytes(value: Bits) -> Bytes:
    """Bits to whole bytes; rejects a bit count not divisible by 8."""
    count = _count(value, "bits_to_bytes")
    if count % 8:
        raise ValueError(
            f"bits_to_bytes: {count!r} bits is not a whole number of "
            f"bytes")
    return Bytes(count // 8)


# -- rate --------------------------------------------------------------
def gbps_to_bps(value: Gbps) -> BitsPerSecond:
    """Gigabits per second to bits per second."""
    return BitsPerSecond(_finite(value, "gbps_to_bps") * 1e9)


def bps_to_gbps(value: BitsPerSecond) -> Gbps:
    """Bits per second to gigabits per second."""
    return Gbps(_finite(value, "bps_to_gbps") / 1e9)
