"""Replay estimation of pairwise waiting weights.

Our switches record exact queue-composition weights
(``w(f_i, f_j) = Σ x_j(pkt)``) at enqueue time.  Real deployments — and
Hawkeye, which Eq. 2's ``w(cf, f_i)`` footnote references — often only
have per-flow packet counts plus queue-depth snapshots, and *replay* the
queue to estimate who waited behind whom.

The estimator models the port as a FIFO fed by Poisson-mixed arrivals:
while the queue holds ``qdepth`` packets, the expected number of
``f_j``-packets ahead of an arriving ``f_i``-packet is ``f_j``'s traffic
share times the depth, so

    w(f_i, f_j) ≈ pkt_num(f_i) x (pkt_num(f_j) / pkt_num(p)) x qdepth(p)

It is exact in expectation for well-mixed contenders and degrades
gracefully for bursty ones — tests compare it against the exact
telemetry on live contention.
"""

from __future__ import annotations

from repro.simnet.packet import FlowKey
from repro.simnet.telemetry import PortTelemetryEntry


def replay_pairwise_weights(entry: PortTelemetryEntry
                            ) -> dict[tuple[FlowKey, FlowKey], float]:
    """Estimate the per-port pairwise waiting weights from counts.

    Returns an empty dict when the port shows no congestion (zero queue
    depth) or fewer than two flows.
    """
    total = entry.total_window_pkts()
    if entry.qdepth_pkts <= 0 or total <= 0 or len(entry.flow_pkts) < 2:
        return {}
    weights: dict[tuple[FlowKey, FlowKey], float] = {}
    for fi, count_i in entry.flow_pkts.items():
        for fj, count_j in entry.flow_pkts.items():
            if fi == fj:
                continue
            share_j = count_j / total
            weights[(fi, fj)] = count_i * share_j * entry.qdepth_pkts
    return weights


def entry_with_replayed_weights(entry: PortTelemetryEntry
                                ) -> PortTelemetryEntry:
    """A copy of ``entry`` whose missing wait_weights are replayed.

    Entries that already carry measured weights are returned unchanged —
    measured data always wins over estimation.
    """
    if entry.wait_weights:
        return entry
    replayed = replay_pairwise_weights(entry)
    if not replayed:
        return entry
    return PortTelemetryEntry(
        port=entry.port,
        qdepth_pkts=entry.qdepth_pkts,
        qdepth_bytes=entry.qdepth_bytes,
        paused=entry.paused,
        flow_pkts=dict(entry.flow_pkts),
        inqueue_flow_pkts=dict(entry.inqueue_flow_pkts),
        wait_weights=replayed,
    )
