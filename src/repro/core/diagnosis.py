"""Anomaly breakdown: signature-based root-cause classification (§III-D2).

Each detector inspects the provenance graph for one signature:

* **flow contention** — some port has both a collective flow and a
  non-collective flow waiting on it;
* **incast** — a contention port whose culprits all target one
  destination host;
* **PFC backpressure** — a collective flow waits at a port from which a
  chain of PFC-causality edges leads to a congestion root elsewhere;
* **PFC storm** — the chain ends at a pause source that emitted PAUSE
  frames without buffer justification (hardware-bug signature);
* **forwarding loop** — TTL-expiry drops recorded for a flow;
* **PFC deadlock** — a cycle in the PFC-causality edges.

New anomaly types can be added by appending detectors to
``SIGNATURE_DETECTORS`` (the extensibility point §V describes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.provenance import ProvenanceGraph
from repro.simnet.packet import FlowKey
from repro.simnet.pfc import PortRef


class AnomalyType(enum.Enum):
    FLOW_CONTENTION = "flow_contention"
    INCAST = "incast"
    PFC_BACKPRESSURE = "pfc_backpressure"
    PFC_STORM = "pfc_storm"
    FORWARDING_LOOP = "forwarding_loop"
    PFC_DEADLOCK = "pfc_deadlock"
    LOAD_IMBALANCE = "load_imbalance"


@dataclass
class AnomalyFinding:
    """One diagnosed anomaly."""

    type: AnomalyType
    #: non-collective flows implicated as culprits
    culprit_flows: set[FlowKey] = field(default_factory=set)
    #: ports where the victim collective flows are impacted
    victim_ports: list[PortRef] = field(default_factory=list)
    #: localized root-cause ports (PFC source / congestion root / cycle)
    root_ports: list[PortRef] = field(default_factory=list)
    #: collective flows affected
    victim_flows: set[FlowKey] = field(default_factory=set)
    detail: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"AnomalyFinding({self.type.value}, "
                f"culprits={sorted(f.short() for f in self.culprit_flows)}, "
                f"roots={[str(p) for p in self.root_ports]})")


@dataclass
class DiagnosisResult:
    """Structured diagnostic output of the analyzer."""

    findings: list[AnomalyFinding] = field(default_factory=list)

    @property
    def detected_flows(self) -> set[FlowKey]:
        flows: set[FlowKey] = set()
        for finding in self.findings:
            flows |= finding.culprit_flows
        return flows

    @property
    def root_ports(self) -> set[PortRef]:
        ports: set[PortRef] = set()
        for finding in self.findings:
            ports.update(finding.root_ports)
        return ports

    def has(self, anomaly_type: AnomalyType) -> bool:
        return any(f.type is anomaly_type for f in self.findings)

    def of_type(self, anomaly_type: AnomalyType) -> list[AnomalyFinding]:
        return [f for f in self.findings if f.type is anomaly_type]


# ----------------------------------------------------------------------
# individual detectors
# ----------------------------------------------------------------------
def detect_flow_contention(graph: ProvenanceGraph
                           ) -> list[AnomalyFinding]:
    """∃p: {f_i, cf} ⊆ F ∧ {e(f_i,p), e(cf,p)} ⊆ E ∧ f_i ≠ cf."""
    findings: list[AnomalyFinding] = []
    cf_set = graph.collective_flows
    by_port: dict[PortRef, tuple[set[FlowKey], set[FlowKey]]] = {}
    for (flow, port) in graph.flow_port:
        victims, culprits = by_port.setdefault(port, (set(), set()))
        if flow in cf_set:
            victims.add(flow)
        else:
            culprits.add(flow)
    # flows contributing to the port (e(p,f)) count as contenders too
    for (port, flow) in graph.port_flow:
        if port in by_port and flow not in cf_set:
            by_port[port][1].add(flow)
    for port, (victims, culprits) in sorted(
            by_port.items(), key=lambda kv: str(kv[0])):
        if victims and culprits:
            findings.append(AnomalyFinding(
                type=AnomalyType.FLOW_CONTENTION,
                culprit_flows=culprits,
                victim_ports=[port],
                root_ports=[port],
                victim_flows=victims,
                detail=f"{len(culprits)} flow(s) contend with the "
                       f"collective at {port}",
            ))
    return findings


def detect_load_imbalance(graph: ProvenanceGraph
                          ) -> list[AnomalyFinding]:
    """ECMP misjudgment (§II-B): collective flows that should spread
    over equal-cost paths pile onto one port and queue behind *each
    other*.  Signature: ≥2 distinct collective flows with e(cf, p) at
    the same port and mutual queueing-ahead weight between them."""
    findings: list[AnomalyFinding] = []
    cf_set = graph.collective_flows
    by_port: dict[PortRef, set[FlowKey]] = {}
    for (flow, port) in graph.flow_port:
        if flow in cf_set:
            by_port.setdefault(port, set()).add(flow)
    for port, victims in sorted(by_port.items(), key=lambda kv: str(kv[0])):
        if len(victims) < 2:
            continue
        mutual = any(
            graph.pairwise_weight(port, a, b) > 0
            for a in victims for b in victims if a != b)
        if not mutual:
            continue
        findings.append(AnomalyFinding(
            type=AnomalyType.LOAD_IMBALANCE,
            victim_ports=[port],
            root_ports=[port],
            victim_flows=set(victims),
            detail=f"{len(victims)} collective flows converge on "
                   f"{port} (ECMP imbalance)",
        ))
    return findings


def detect_incast(graph: ProvenanceGraph) -> list[AnomalyFinding]:
    """Contention whose culprits converge on a single destination."""
    findings = []
    for contention in detect_flow_contention(graph):
        culprits = contention.culprit_flows
        destinations = {flow.dst for flow in culprits}
        if len(culprits) >= 2 and len(destinations) == 1:
            findings.append(AnomalyFinding(
                type=AnomalyType.INCAST,
                culprit_flows=culprits,
                victim_ports=contention.victim_ports,
                root_ports=contention.root_ports,
                victim_flows=contention.victim_flows,
                detail=f"{len(culprits)} flows incast toward "
                       f"{destinations.pop()}",
            ))
    return findings


def _chase_pfc_chain(graph: ProvenanceGraph,
                     start: PortRef) -> tuple[set[PortRef], list[PortRef]]:
    """Follow e(p_i, p_j) edges from ``start``; return (reachable set,
    terminal ports with no further downstream)."""
    reachable: set[PortRef] = set()
    terminals: list[PortRef] = []
    stack = [start]
    while stack:
        port = stack.pop()
        if port in reachable:
            continue
        reachable.add(port)
        downstream = graph.downstream_ports(port)
        if not downstream:
            terminals.append(port)
        else:
            stack.extend(downstream)
    return reachable, terminals


def detect_pfc_anomalies(graph: ProvenanceGraph) -> list[AnomalyFinding]:
    """PFC backpressure and PFC storm, with root localization.

    ∃p, cf: e(cf,p) ∧ (p paused or e(p, p_j) exists).  The chase walks
    the spreading path; an ungrounded pause source anywhere along it
    reclassifies the finding as a storm rooted at that source.
    """
    findings: list[AnomalyFinding] = []
    cf_set = graph.collective_flows
    seen_roots: set[tuple] = set()
    for cf in sorted(cf_set, key=lambda f: f.short()):
        for port in sorted(graph.ports_of_flow(cf), key=str):
            has_chain = bool(graph.downstream_ports(port))
            is_paused = port in graph.paused_ports or any(
                e.victim == port for e in graph.pause_events)
            if not has_chain and not is_paused:
                continue
            reachable, terminals = _chase_pfc_chain(graph, port)
            storm_sources = {
                event.sender for event in graph.pause_events
                if event.sender in graph.ungrounded_pause_sources
                and (event.victim in reachable or event.victim == port)}
            if storm_sources:
                roots = sorted(storm_sources, key=str)
                key = (AnomalyType.PFC_STORM, tuple(map(str, roots)))
                if key in seen_roots:
                    for finding in findings:
                        if finding.type is AnomalyType.PFC_STORM \
                                and finding.root_ports == roots:
                            finding.victim_flows.add(cf)
                    continue
                seen_roots.add(key)
                findings.append(AnomalyFinding(
                    type=AnomalyType.PFC_STORM,
                    victim_ports=[port],
                    root_ports=roots,
                    victim_flows={cf},
                    detail="ungrounded PAUSE injection traced to "
                           + ", ".join(map(str, roots)),
                ))
                continue
            chain_roots = [t for t in terminals if t != port]
            if not chain_roots and is_paused:
                # paused but chain info missing: root at the pause sender
                chain_roots = sorted(
                    {e.sender for e in graph.pause_events
                     if e.victim == port}, key=str)
            if not chain_roots:
                continue
            culprits = set()
            for root in chain_roots:
                culprits.update(f for f in graph.flows_at_port(root)
                                if f not in cf_set)
                culprits.update(f for f in graph.waiting_flows_at_port(root)
                                if f not in cf_set)
            key = (AnomalyType.PFC_BACKPRESSURE,
                   tuple(sorted(map(str, chain_roots))))
            if key in seen_roots:
                for finding in findings:
                    if finding.type is AnomalyType.PFC_BACKPRESSURE \
                            and sorted(map(str, finding.root_ports)) \
                            == sorted(map(str, chain_roots)):
                        finding.victim_flows.add(cf)
                        finding.culprit_flows |= culprits
                continue
            seen_roots.add(key)
            findings.append(AnomalyFinding(
                type=AnomalyType.PFC_BACKPRESSURE,
                culprit_flows=culprits,
                victim_ports=[port],
                root_ports=chain_roots,
                victim_flows={cf},
                detail="PFC backpressure chain from "
                       f"{port} to {', '.join(map(str, chain_roots))}",
            ))
    return findings


def detect_forwarding_loop(graph: ProvenanceGraph) -> list[AnomalyFinding]:
    """TTL-expiry drops recorded in telemetry implicate a loop."""
    if not graph.ttl_drop_flows:
        return []
    return [AnomalyFinding(
        type=AnomalyType.FORWARDING_LOOP,
        culprit_flows={f for f in graph.ttl_drop_flows
                       if f not in graph.collective_flows},
        victim_flows={f for f in graph.ttl_drop_flows
                      if f in graph.collective_flows},
        detail=f"TTL expiry observed for "
               f"{len(graph.ttl_drop_flows)} flow(s)",
    )]


def detect_pfc_deadlock(graph: ProvenanceGraph) -> list[AnomalyFinding]:
    """A cycle of PFC-causality edges halts everything on the cycle."""
    cycles = graph.port_port_cycles()
    return [AnomalyFinding(
        type=AnomalyType.PFC_DEADLOCK,
        root_ports=list(cycle),
        detail="PFC wait cycle: " + " -> ".join(map(str, cycle)),
    ) for cycle in cycles]


SIGNATURE_DETECTORS: list[Callable[[ProvenanceGraph],
                                   list[AnomalyFinding]]] = [
    detect_flow_contention,
    detect_incast,
    detect_load_imbalance,
    detect_pfc_anomalies,
    detect_forwarding_loop,
    detect_pfc_deadlock,
]


def diagnose(graph: ProvenanceGraph,
             detectors: Optional[list] = None) -> DiagnosisResult:
    """Run every signature detector over the provenance graph."""
    result = DiagnosisResult()
    for detector in detectors or SIGNATURE_DETECTORS:
        result.findings.extend(detector(graph))
    return result
