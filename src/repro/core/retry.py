"""Retry policies, deadlines, and circuit breaking.

One place for the "try again, but not forever" discipline the live
and fleet layers kept reinventing:

* :class:`RetryPolicy` — seeded capped exponential backoff with
  jitter.  Its :meth:`~RetryPolicy.delay_s` formula is exactly the one
  :class:`repro.live.supervisor.Supervisor` has always used (``raw +
  raw * jitter_frac * rng.random()``, capped), and the supervisor now
  delegates here — same seed, bit-identical restart schedule.
* :class:`Deadline` — a monotonic wall-clock budget that several
  attempts (or several layers) can share.
* :class:`CircuitBreaker` — closed / open / half-open.  Consecutive
  failures past a threshold open it; after ``reset_after_s`` one
  trial call is let through, and its outcome closes or re-opens.
* :func:`call_with_retry` — drives a callable under all three.

Everything wall-clock is injectable (``clock`` / ``sleep``) and every
random draw comes from a caller-visible seeded RNG, so retry
schedules reproduce exactly in tests.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro.core.units import Seconds

T = TypeVar("T")


class RetryBudgetExceeded(OSError):
    """Retries exhausted (attempt cap, deadline, or open breaker)."""


class Deadline:
    """A monotonic time budget shared across attempts."""

    def __init__(self, budget_s: Seconds,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.budget_s = budget_s
        self.clock = clock
        self._start = clock()

    def elapsed_s(self) -> float:
        return self.clock() - self._start

    def remaining_s(self) -> float:
        return max(0.0, self.budget_s - self.elapsed_s())

    def expired(self) -> bool:
        return self.elapsed_s() >= self.budget_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Deadline(budget_s={self.budget_s!r}, "
                f"remaining_s={self.remaining_s():.3f})")


@dataclass(frozen=True)
class RetryPolicy:
    """Seeded capped exponential backoff with jitter."""

    #: attempts allowed in total (first try included); 0 = unlimited
    max_attempts: int = 5
    #: first backoff delay; grows by ``factor`` per consecutive failure
    base_delay_s: Seconds = 0.05
    #: multiplier between consecutive delays
    factor: float = 2.0
    #: delays never exceed this, jitter included
    max_delay_s: Seconds = 1.0
    #: uniform jitter fraction added on top of the raw delay
    jitter_frac: float = 0.1
    #: seed of the jitter RNG (deterministic retry schedule)
    seed: int = 0

    def rng(self) -> random.Random:
        return random.Random(self.seed)

    def delay_s(self, attempt: int,
                rng: Optional[random.Random] = None) -> float:
        """Backoff before retry number ``attempt`` (0-based count of
        consecutive failures).  With an explicit ``rng`` the caller
        owns the jitter stream (the supervisor passes its own, so the
        historical restart schedule is preserved bit-for-bit)."""
        rng = rng if rng is not None else self.rng()
        raw = self.base_delay_s * self.factor ** attempt
        jitter = raw * self.jitter_frac * rng.random()
        return min(raw + jitter, self.max_delay_s)


class CircuitBreaker:
    """Closed / open / half-open breaker over consecutive failures.

    ``failure_threshold`` consecutive failures open it; while open,
    :meth:`allow` rejects until ``reset_after_s`` has elapsed, then
    admits exactly one trial (half-open).  A success closes the
    breaker, a failure re-opens it for another full cooldown.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, failure_threshold: int = 5,
                 reset_after_s: Seconds = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.failure_threshold = max(1, failure_threshold)
        self.reset_after_s = reset_after_s
        self.clock = clock
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_total = 0
        self._opened_at = 0.0

    def allow(self) -> bool:
        """Whether a call may proceed right now (may transition an
        open breaker to half-open once the cooldown elapsed)."""
        if self.state == self.OPEN:
            if self.clock() - self._opened_at >= self.reset_after_s:
                self.state = self.HALF_OPEN
                return True
            return False
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = self.CLOSED

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN \
                or self.consecutive_failures >= self.failure_threshold:
            if self.state != self.OPEN:
                self.opened_total += 1
            self.state = self.OPEN
            self._opened_at = self.clock()

    def state_code(self) -> int:
        """Numeric state for metric export (0 closed, 1 half-open,
        2 open)."""
        return {self.CLOSED: 0, self.HALF_OPEN: 1, self.OPEN: 2}[
            self.state]


def call_with_retry(fn: Callable[[], T],
                    policy: Optional[RetryPolicy] = None,
                    deadline: Optional[Deadline] = None,  # repro: noqa RPR012 - Deadline is a budget object, not a bare magnitude
                    breaker: Optional[CircuitBreaker] = None,
                    retry_on: tuple = (OSError,),
                    sleep: Callable[[float], None] = time.sleep,
                    rng: Optional[random.Random] = None,
                    on_retry: Optional[Callable[[int, BaseException,
                                                 float], None]] = None
                    ) -> T:
    """Call ``fn`` under a retry policy / deadline / breaker.

    Raises :class:`RetryBudgetExceeded` when the breaker rejects the
    call outright; re-raises the last error once attempts or the
    deadline run out.  ``on_retry(attempt, error, delay_s)`` observes
    every scheduled retry.
    """
    policy = policy if policy is not None else RetryPolicy()
    rng = rng if rng is not None else policy.rng()
    failures = 0
    # bounded by policy.max_attempts / deadline / breaker below; the
    # unlimited (max_attempts=0) form requires an explicit deadline
    if policy.max_attempts <= 0 and deadline is None:
        raise ValueError("unlimited max_attempts requires a deadline")
    while True:
        if breaker is not None and not breaker.allow():
            raise RetryBudgetExceeded(
                "circuit breaker is open; call rejected")
        try:
            result = fn()
        except retry_on as error:
            if breaker is not None:
                breaker.record_failure()
            failures += 1
            out_of_attempts = 0 < policy.max_attempts <= failures
            if out_of_attempts or (deadline is not None
                                   and deadline.expired()):
                raise
            delay = policy.delay_s(failures - 1, rng)
            if deadline is not None:
                delay = min(delay, deadline.remaining_s())
            if on_retry is not None:
                on_retry(failures, error, delay)
            if delay > 0:
                sleep(delay)
        else:
            if breaker is not None:
                breaker.record_success()
            return result


__all__ = [
    "Deadline",
    "RetryPolicy",
    "CircuitBreaker",
    "RetryBudgetExceeded",
    "call_with_retry",
]
