"""The deployable Vedrfolnir bundle.

:class:`VedrfolnirSystem` wires one :class:`HostMonitor` and one
:class:`DetectionAgent` onto every host participating in a collective,
points the network's telemetry report sink at the analyzer, and exposes
:meth:`analyze` to produce the diagnosis after (or during) the run.

This is the object applications and experiments interact with::

    runtime = CollectiveRuntime(network, schedule)
    system = VedrfolnirSystem(network, runtime)
    runtime.start()
    network.run_until_quiet()
    diagnosis = system.analyze()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.collective.runtime import CollectiveRuntime
from repro.core.analyzer import VedrfolnirAnalyzer, VedrfolnirDiagnosis
from repro.core.detection import DetectionAgent, DetectionConfig
from repro.core.monitor import HostMonitor
from repro.simnet.network import Network


@dataclass
class VedrfolnirConfig:
    """Top-level configuration for a Vedrfolnir deployment."""

    detection: DetectionConfig = field(default_factory=DetectionConfig)
    #: multiple of the ideal step time above which a step counts as a
    #: performance bottleneck in the analysis
    slowdown_factor: float = 1.5
    #: disable host monitoring entirely (overhead baseline, Fig. 11)
    monitoring_enabled: bool = True


class VedrfolnirSystem:
    """Monitors + detection agents + analyzer for one collective run."""

    def __init__(self, network: Network, runtime: CollectiveRuntime,
                 config: Optional[VedrfolnirConfig] = None) -> None:
        self.network = network
        self.runtime = runtime
        self.config = config or VedrfolnirConfig()
        self.analyzer = VedrfolnirAnalyzer(
            pfc_xoff_bytes=network.config.pfc_xoff_bytes,
            slowdown_factor=self.config.slowdown_factor)
        self.monitors: dict[str, HostMonitor] = {}
        self.agents: dict[str, DetectionAgent] = {}
        if self.config.monitoring_enabled:
            self._deploy()

    def _deploy(self) -> None:
        self.network.set_report_sink(self.analyzer.add_report)
        for node in self.runtime.schedule.nodes:
            monitor = HostMonitor(
                node, self.runtime.schedule,
                report_fn=self.analyzer.add_step_record)
            monitor.attach(self.runtime)
            self.monitors[node] = monitor
            self.agents[node] = DetectionAgent(
                self.network, node, self.runtime,
                config=self.config.detection)

    # ------------------------------------------------------------------
    @property
    def total_triggers(self) -> int:
        return sum(len(agent.triggers) for agent in self.agents.values())

    def analyze(self) -> VedrfolnirDiagnosis:
        """Produce the structured diagnosis from everything collected."""
        return self.analyzer.analyze(self.runtime)
