"""Operator-facing diagnostic reports.

:class:`VedrfolnirDiagnosis` is a programmatic result; operators want a
document.  :func:`render_text` produces a sectioned plain-text report
(summary, bottleneck analysis, anomaly breakdown, contributor ranking,
recommended actions), and :func:`render_json` a stable JSON structure
for dashboards/ticketing integrations.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.core.analyzer import VedrfolnirDiagnosis
from repro.core.diagnosis import AnomalyType
from repro.viz import format_critical_path

#: per anomaly type: what a NOC runbook would say
RECOMMENDED_ACTIONS = {
    AnomalyType.FLOW_CONTENTION:
        "rate-limit or reschedule the top contributing background flows",
    AnomalyType.INCAST:
        "stagger the senders targeting the hot destination or enable "
        "deeper ECN marking at its ToR",
    AnomalyType.PFC_BACKPRESSURE:
        "relieve the congestion root port; consider ECN thresholds "
        "below PFC XOFF on that path",
    AnomalyType.PFC_STORM:
        "isolate the storm port immediately (disable PFC on it or take "
        "the link down); suspect NIC/switch firmware",
    AnomalyType.FORWARDING_LOOP:
        "audit recent routing reconfigurations; the loop self-heals "
        "only when routes converge",
    AnomalyType.PFC_DEADLOCK:
        "break the cycle by resetting one port's pause state; audit "
        "up-down routing compliance",
    AnomalyType.LOAD_IMBALANCE:
        "rehash/repath the converged flows (ECMP seed or explicit "
        "path control)",
}


def render_text(diagnosis: VedrfolnirDiagnosis,
                title: str = "Vedrfolnir diagnostic report",
                top_contributors: int = 5) -> str:
    """A complete plain-text report."""
    lines = [title, "=" * len(title), ""]

    graph = diagnosis.waiting_graph
    total_ms = graph.total_time_ns() / 1e6
    lines.append(f"collective: {graph.schedule.algorithm} "
                 f"{graph.schedule.op.value}, "
                 f"{len(graph.schedule.nodes)} nodes, "
                 f"{len(graph.records)} steps recorded, "
                 f"{total_ms:.3f} ms total")
    lines.append("")

    lines.append("performance bottleneck")
    lines.append("-" * 22)
    if diagnosis.bottleneck_steps:
        lines.append(f"slow steps: {diagnosis.bottleneck_steps}")
    else:
        lines.append("no step ran significantly over its ideal time")
    lines.append("critical path:")
    lines.append(format_critical_path(diagnosis.critical_path))
    lines.append("")

    lines.append("anomaly breakdown")
    lines.append("-" * 17)
    if not diagnosis.result.findings:
        lines.append("no network anomalies diagnosed")
    seen_actions = []
    for finding in diagnosis.result.findings:
        lines.append(f"* {finding.type.value}: {finding.detail}")
        if finding.root_ports:
            lines.append("    root port(s): "
                         + ", ".join(map(str, finding.root_ports)))
        if finding.culprit_flows:
            culprits = sorted(f.short() for f in finding.culprit_flows)
            lines.append(f"    culprit flows: {', '.join(culprits)}")
        action = RECOMMENDED_ACTIONS.get(finding.type)
        if action and action not in seen_actions:
            seen_actions.append(action)
    lines.append("")

    ranked = diagnosis.top_contributors(top_contributors)
    if ranked:
        lines.append("contributor ranking (Eq. 3)")
        lines.append("-" * 27)
        for flow, score in ranked:
            lines.append(f"  {flow.short():<32} {score:14,.0f}")
        lines.append("")

    if seen_actions:
        lines.append("recommended actions")
        lines.append("-" * 19)
        for i, action in enumerate(seen_actions, 1):
            lines.append(f"{i}. {action}")
    return "\n".join(lines)


def render_json(diagnosis: VedrfolnirDiagnosis,
                top_contributors: int = 10,
                indent: Optional[int] = None) -> str:
    """A machine-readable report."""
    graph = diagnosis.waiting_graph
    payload = {
        "collective": {
            "algorithm": graph.schedule.algorithm,
            "op": graph.schedule.op.value,
            "nodes": graph.schedule.nodes,
            "steps_recorded": len(graph.records),
            "total_time_ns": graph.total_time_ns(),
        },
        "bottleneck_steps": diagnosis.bottleneck_steps,
        "critical_path": [
            {
                "node": entry.node,
                "step": entry.step_index,
                "start_ns": entry.start_time,
                "end_ns": entry.end_time,
                "entered_via": entry.entered_via,
            } for entry in diagnosis.critical_path],
        "findings": [
            {
                "type": finding.type.value,
                "detail": finding.detail,
                "root_ports": [str(p) for p in finding.root_ports],
                "victim_ports": [str(p) for p in finding.victim_ports],
                "culprit_flows": sorted(
                    f.short() for f in finding.culprit_flows),
                "victim_flows": sorted(
                    f.short() for f in finding.victim_flows),
                "recommended_action":
                    RECOMMENDED_ACTIONS.get(finding.type, ""),
            } for finding in diagnosis.result.findings],
        "contributors": [
            {"flow": flow.short(), "score": score}
            for flow, score in diagnosis.top_contributors(
                top_contributors)],
    }
    return json.dumps(payload, indent=indent)
