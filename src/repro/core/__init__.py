"""Vedrfolnir core: the paper's primary contribution.

* :mod:`repro.core.units` — the typed unit-of-measure layer (NewTypes
  plus checked converters) enforced by ``repro check --units``.
* :mod:`repro.core.waiting_graph` — the per-step waiting graph (§III-B),
  its pruning and critical-path analysis.
* :mod:`repro.core.monitor` — host-side performance monitoring with
  SSQ/RSQ waiting-state awareness (§III-C1, Table I).
* :mod:`repro.core.detection` — step-aware adaptive anomaly detection:
  per-step RTT thresholds, budgeted triggers, notification packets that
  transfer detection opportunities (§III-C2, Figs. 5-8).
* :mod:`repro.core.provenance` — network provenance graphs with
  flow→port, port→flow and port→port (PFC causality) edges (§III-D1).
* :mod:`repro.core.diagnosis` — anomaly signatures and breakdown
  (§III-D2).
* :mod:`repro.core.rating` — contributor rating, Eqs. 1-3 (§III-D3).
* :mod:`repro.core.analyzer` — the centralized analyzer tying it all
  together into structured diagnostic results.
* :mod:`repro.core.system` — :class:`VedrfolnirSystem`, the deployable
  bundle (monitors + agents + analyzer) applications attach to a run.
* :mod:`repro.core.failpoints` — named, seeded fault injection at
  annotated sites (``REPRO_FAILPOINTS``).
* :mod:`repro.core.retry` — retry policies, monotonic deadlines and a
  circuit breaker shared by the live / fleet resilience paths.

Exports resolve lazily (PEP 562) so that leaf modules — in particular
:mod:`repro.core.units`, which :mod:`repro.simnet` imports at runtime —
can be imported without dragging in the analyzer stack and its reverse
dependency on the simulator.
"""

import importlib

#: public name -> defining submodule (resolved on first attribute access)
_EXPORTS = {
    "WaitingGraph": "repro.core.waiting_graph",
    "WaitingVertex": "repro.core.waiting_graph",
    "EdgeKind": "repro.core.waiting_graph",
    "HostMonitor": "repro.core.monitor",
    "WaitingState": "repro.core.monitor",
    "DetectionAgent": "repro.core.detection",
    "DetectionConfig": "repro.core.detection",
    "ProvenanceGraph": "repro.core.provenance",
    "build_provenance": "repro.core.provenance",
    "AnomalyType": "repro.core.diagnosis",
    "AnomalyFinding": "repro.core.diagnosis",
    "DiagnosisResult": "repro.core.diagnosis",
    "diagnose": "repro.core.diagnosis",
    "contribution_to_port": "repro.core.rating",
    "contribution_to_flow": "repro.core.rating",
    "contribution_to_collective": "repro.core.rating",
    "VedrfolnirAnalyzer": "repro.core.analyzer",
    "VedrfolnirSystem": "repro.core.system",
    "VedrfolnirConfig": "repro.core.system",
    "IncrementalWaitingGraph": "repro.core.incremental",
    "replay_pairwise_weights": "repro.core.replay",
    "render_json": "repro.core.reports",
    "render_text": "repro.core.reports",
    "FailpointError": "repro.core.failpoints",
    "FailpointSpec": "repro.core.failpoints",
    "Deadline": "repro.core.retry",
    "RetryPolicy": "repro.core.retry",
    "CircuitBreaker": "repro.core.retry",
    "RetryBudgetExceeded": "repro.core.retry",
    "call_with_retry": "repro.core.retry",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: resolve each export once
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
