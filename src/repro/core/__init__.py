"""Vedrfolnir core: the paper's primary contribution.

* :mod:`repro.core.waiting_graph` — the per-step waiting graph (§III-B),
  its pruning and critical-path analysis.
* :mod:`repro.core.monitor` — host-side performance monitoring with
  SSQ/RSQ waiting-state awareness (§III-C1, Table I).
* :mod:`repro.core.detection` — step-aware adaptive anomaly detection:
  per-step RTT thresholds, budgeted triggers, notification packets that
  transfer detection opportunities (§III-C2, Figs. 5-8).
* :mod:`repro.core.provenance` — network provenance graphs with
  flow→port, port→flow and port→port (PFC causality) edges (§III-D1).
* :mod:`repro.core.diagnosis` — anomaly signatures and breakdown
  (§III-D2).
* :mod:`repro.core.rating` — contributor rating, Eqs. 1-3 (§III-D3).
* :mod:`repro.core.analyzer` — the centralized analyzer tying it all
  together into structured diagnostic results.
* :mod:`repro.core.system` — :class:`VedrfolnirSystem`, the deployable
  bundle (monitors + agents + analyzer) applications attach to a run.
"""

from repro.core.waiting_graph import WaitingGraph, WaitingVertex, EdgeKind
from repro.core.monitor import HostMonitor, WaitingState
from repro.core.detection import DetectionAgent, DetectionConfig
from repro.core.provenance import ProvenanceGraph, build_provenance
from repro.core.diagnosis import (
    AnomalyType,
    AnomalyFinding,
    DiagnosisResult,
    diagnose,
)
from repro.core.rating import (
    contribution_to_port,
    contribution_to_flow,
    contribution_to_collective,
)
from repro.core.analyzer import VedrfolnirAnalyzer
from repro.core.system import VedrfolnirSystem, VedrfolnirConfig
from repro.core.incremental import IncrementalWaitingGraph
from repro.core.replay import replay_pairwise_weights
from repro.core.reports import render_json, render_text

__all__ = [
    "WaitingGraph",
    "WaitingVertex",
    "EdgeKind",
    "HostMonitor",
    "WaitingState",
    "DetectionAgent",
    "DetectionConfig",
    "ProvenanceGraph",
    "build_provenance",
    "AnomalyType",
    "AnomalyFinding",
    "DiagnosisResult",
    "diagnose",
    "contribution_to_port",
    "contribution_to_flow",
    "contribution_to_collective",
    "VedrfolnirAnalyzer",
    "VedrfolnirSystem",
    "VedrfolnirConfig",
    "IncrementalWaitingGraph",
    "replay_pairwise_weights",
    "render_text",
    "render_json",
]
