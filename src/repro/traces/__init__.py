"""Trace capture and offline analysis.

In deployment, Vedrfolnir's analyzer is decoupled from the hosts and
switches that produce monitoring data.  This package provides that
decoupling for the reproduction: a :class:`TraceRecorder` captures
everything a live run reports (the decomposition, per-step records,
switch telemetry reports, expected step times, PFC thresholds) into a
JSONL file, and :func:`analyze_trace` replays the full §III-D analysis
over the file later — no simulator required.

    recorder = TraceRecorder.attach(network, runtime)
    runtime.start(); network.run_until_quiet(...)
    recorder.write("run.jsonl", runtime)

    trace = load_trace("run.jsonl")
    diagnosis = analyze_trace(trace)

Two on-disk formats share one schema: the JSONL capture (greppable,
appendable, the recorder's ground truth) and the columnar store
(:mod:`repro.traces.columnar` — mmap replay, zero-copy queries, the
hot-path format).  ``repro trace convert`` moves between them
losslessly; every reader here sniffs the format, and
:func:`trace_events` is the format-agnostic replay entry point::

    write_columnar("run.jsonl", "run.vtrc")
    for event in trace_events("run.vtrc", cursor=cursor):
        pipeline.publish(event)
"""

from typing import Iterator, Optional, Union

from repro.traces.columnar import (
    ColumnarTrace,
    columnar_events,
    content_address,
    jsonl_digest,
    sniff_format,
    write_columnar,
    write_jsonl,
)
from repro.traces.serialize import (
    decode_flow_key,
    decode_step_record,
    decode_switch_report,
    encode_flow_key,
    encode_step_record,
    encode_switch_report,
)
from repro.traces.store import (
    Trace,
    TraceFormatError,
    TraceRecorder,
    TraceRuntime,
    analyze_trace,
    load_trace,
)
from repro.traces.stream import (
    ErrorSink,
    TraceEvent,
    TraceHeader,
    merged_events,
    read_header,
    stream_events,
)


def _skip_by_counts(path, on_error: Optional[ErrorSink],
                    counts: dict[str, int]) -> Iterator[TraceEvent]:
    """Merged JSONL stream with the first ``counts[kind]`` records of
    each kind dropped — the slow-but-portable resume path used when a
    cursor has no byte offsets for this file.

    While the skip is still in progress, quarantine callbacks are
    muted: the skipped region was already accounted by the run that
    produced the cursor, and re-reporting it would double-count into
    restored quarantine state.
    """
    remaining = {kind: int(count)
                 for kind, count in counts.items() if count > 0}
    skipping = [bool(remaining)]
    sink: Optional[ErrorSink] = on_error
    if on_error is not None:
        def sink(line_no: int, reason: str, snippet: str) -> None:
            if not skipping[0]:
                on_error(line_no, reason, snippet)
    for event in merged_events(path, sink):
        left = remaining.get(event.kind, 0)
        if left > 0:
            remaining[event.kind] = left - 1
            if left == 1 and not any(remaining.values()):
                skipping[0] = False
            continue
        yield event


def trace_events(path, on_error: Optional[ErrorSink] = None,
                 cursor=None) -> Iterator[TraceEvent]:
    """Merged completion-time event stream over either trace format.

    The one replay entry point hot consumers share (``repro serve``,
    fleet tenants, benchmarks): sniffs the format, then picks the
    cheapest correct resume strategy for ``cursor`` (a
    :class:`~repro.live.checkpoint.ReplayCursor` or anything with its
    ``resume_map()``/``resume_counts()`` shape):

    * columnar file — replay the stored merge permutation, skipping
      the first ``resume_counts()`` records per kind without decoding;
    * JSONL file with byte offsets in the cursor — seek via
      ``merged_events(resume=...)`` (offsets only ever come from the
      same JSONL file);
    * JSONL file with only counts (the cursor was taken against the
      columnar form) — re-scan, dropping already-consumed records.

    Either way the yielded suffix is identical to what an
    uninterrupted replay would have produced from ``cursor`` on — the
    recovery contract is format-independent.
    """
    if sniff_format(path) == "columnar":
        skip = cursor.resume_counts() if cursor is not None else None
        yield from columnar_events(path, on_error=on_error, skip=skip)
        return
    if cursor is not None:
        resume = cursor.resume_map()
        if resume is not None:
            yield from merged_events(path, on_error, resume=resume)
            return
        counts = cursor.resume_counts()
        if any(counts.values()):
            yield from _skip_by_counts(path, on_error, counts)
            return
    yield from merged_events(path, on_error)


__all__ = [
    "encode_flow_key",
    "decode_flow_key",
    "encode_step_record",
    "decode_step_record",
    "encode_switch_report",
    "decode_switch_report",
    "Trace",
    "TraceFormatError",
    "TraceRecorder",
    "TraceRuntime",
    "load_trace",
    "analyze_trace",
    "TraceEvent",
    "TraceHeader",
    "read_header",
    "stream_events",
    "merged_events",
    "trace_events",
    "ColumnarTrace",
    "columnar_events",
    "content_address",
    "jsonl_digest",
    "sniff_format",
    "write_columnar",
    "write_jsonl",
]
