"""Trace capture and offline analysis.

In deployment, Vedrfolnir's analyzer is decoupled from the hosts and
switches that produce monitoring data.  This package provides that
decoupling for the reproduction: a :class:`TraceRecorder` captures
everything a live run reports (the decomposition, per-step records,
switch telemetry reports, expected step times, PFC thresholds) into a
JSONL file, and :func:`analyze_trace` replays the full §III-D analysis
over the file later — no simulator required.

    recorder = TraceRecorder.attach(network, runtime)
    runtime.start(); network.run_until_quiet(...)
    recorder.write("run.jsonl", runtime)

    trace = load_trace("run.jsonl")
    diagnosis = analyze_trace(trace)
"""

from repro.traces.serialize import (
    decode_flow_key,
    decode_step_record,
    decode_switch_report,
    encode_flow_key,
    encode_step_record,
    encode_switch_report,
)
from repro.traces.store import (
    Trace,
    TraceFormatError,
    TraceRecorder,
    TraceRuntime,
    analyze_trace,
    load_trace,
)
from repro.traces.stream import (
    TraceEvent,
    TraceHeader,
    merged_events,
    read_header,
    stream_events,
)

__all__ = [
    "encode_flow_key",
    "decode_flow_key",
    "encode_step_record",
    "decode_step_record",
    "encode_switch_report",
    "decode_switch_report",
    "Trace",
    "TraceFormatError",
    "TraceRecorder",
    "TraceRuntime",
    "load_trace",
    "analyze_trace",
    "TraceEvent",
    "TraceHeader",
    "read_header",
    "stream_events",
    "merged_events",
]
