"""Streaming trace access: yield records instead of loading files.

:func:`load_trace` materializes an entire capture; a live service
cannot.  This module reads the same JSONL format incrementally:

* :func:`read_header` scans only the prologue (``meta`` / ``schedule``
  / ``flow_key`` / ``expected`` entries) and stops at the first data
  record;
* :func:`stream_events` yields decoded ``step_record`` /
  ``switch_report`` events one at a time, in file order;
* :func:`merged_events` yields them in *completion-time order* — the
  order the paper's analyzer queues entries in (§III-D1) — by merging
  the two per-kind streams (each individually time-sorted by the
  writer) with two file handles and O(1) buffering.

Every reader takes an optional quarantine callback
``on_error(line_no, reason, snippet)``; with it, malformed lines are
reported and skipped instead of raising, so one truncated line cannot
take down a tailing pipeline.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Optional, Union

from repro.collective.primitives import StepSchedule
from repro.simnet.packet import FlowKey
from repro.traces import serialize
from repro.traces.store import FORMAT_VERSION, TraceFormatError

#: quarantine callback: (line_no, reason, snippet)
ErrorSink = Callable[[int, str, str], None]

#: record kinds that belong to the monitoring stream (vs the prologue)
DATA_KINDS = ("step_record", "switch_report")


@dataclass
class TraceHeader:
    """Everything the analyzer needs *before* the stream starts."""

    schedule: StepSchedule
    flow_keys: dict[tuple[str, int], FlowKey] = field(
        default_factory=dict)
    expected_step_times: dict[tuple[str, int], float] = field(
        default_factory=dict)
    pfc_xoff_bytes: int = 0
    meta: dict = field(default_factory=dict)


@dataclass(frozen=True)
class TraceEvent:
    """One decoded monitoring-stream entry.

    ``time`` is the event's completion/emission time in simulation
    nanoseconds — a step record's ``end_time``, a switch report's
    ``time``.
    """

    kind: str
    time: float
    payload: object
    line_no: int


def _lines(path: Union[str, Path]) -> Iterator[tuple[int, str]]:
    with Path(path).open() as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if line:
                yield line_no, line


def _parse(line_no: int, line: str,
           on_error: Optional[ErrorSink]) -> Optional[dict]:
    try:
        entry = json.loads(line)
        if not isinstance(entry, dict):
            raise TraceFormatError(
                f"expected a JSON object, got {type(entry).__name__}")
        return entry
    except (ValueError, TraceFormatError) as error:
        if on_error is None:
            raise TraceFormatError(str(error), line_no) from error
        on_error(line_no, f"{type(error).__name__}: {error}", line)
        return None


# ----------------------------------------------------------------------
# header
# ----------------------------------------------------------------------
def read_header(path: Union[str, Path],
                on_error: Optional[ErrorSink] = None) -> TraceHeader:
    """Scan the prologue; stop at the first monitoring-stream record."""
    schedule: Optional[StepSchedule] = None
    flow_keys: dict[tuple[str, int], FlowKey] = {}
    expected: dict[tuple[str, int], float] = {}
    meta: dict = {}
    for line_no, line in _lines(path):
        entry = _parse(line_no, line, on_error)
        if entry is None:
            continue
        kind = entry.get("kind")
        if kind in DATA_KINDS:
            break
        if kind == "meta":
            meta = entry
            if entry.get("version") != FORMAT_VERSION:
                raise TraceFormatError(
                    f"unsupported trace version: found "
                    f"{entry.get('version')!r}, expected "
                    f"{FORMAT_VERSION!r}", line_no)
        elif kind == "schedule":
            schedule = serialize.decode_schedule(entry["schedule"])
        elif kind == "flow_key":
            flow_keys[(entry["node"], int(entry["step"]))] = \
                serialize.decode_flow_key(entry["flow"])
        elif kind == "expected":
            expected[(entry["node"], int(entry["step"]))] = \
                float(entry["time_ns"])
    if schedule is None:
        raise TraceFormatError(f"{path} contains no schedule record")
    return TraceHeader(
        schedule=schedule,
        flow_keys=flow_keys,
        expected_step_times=expected,
        pfc_xoff_bytes=int(meta.get("pfc_xoff_bytes", 0)),
        meta=meta,
    )


# ----------------------------------------------------------------------
# data stream
# ----------------------------------------------------------------------
def _decode_event(entry: dict, line_no: int) -> Optional[TraceEvent]:
    kind = entry.get("kind")
    if kind == "step_record":
        record = serialize.decode_step_record(entry)
        return TraceEvent("step_record", record.end_time, record,
                          line_no)
    if kind == "switch_report":
        report = serialize.decode_switch_report(entry)
        return TraceEvent("switch_report", report.time, report,
                          line_no)
    return None


def stream_events(path: Union[str, Path],
                  on_error: Optional[ErrorSink] = None,
                  kinds: tuple[str, ...] = DATA_KINDS
                  ) -> Iterator[TraceEvent]:
    """Yield monitoring-stream events one at a time, in file order."""
    for line_no, line in _lines(path):
        entry = _parse(line_no, line, on_error)
        if entry is None or entry.get("kind") not in kinds:
            continue
        if on_error is None:
            event = _decode_event(entry, line_no)
        else:
            try:
                event = _decode_event(entry, line_no)
            except Exception as error:  # noqa: BLE001 - quarantine
                on_error(line_no,
                         f"{type(error).__name__}: {error}", line)
                continue
        if event is not None:
            yield event


def merged_events(path: Union[str, Path],
                  on_error: Optional[ErrorSink] = None
                  ) -> Iterator[TraceEvent]:
    """Yield data events in completion-time order.

    The writer emits each kind in its own time-sorted run, so a 2-way
    streaming merge over two handles of the same file reconstructs the
    arrival order a live analyzer would have seen, without loading the
    capture.  Ties break toward step records (hosts report a step's
    end before switches report the window that contained it).
    """
    rank = {"step_record": 0, "switch_report": 1}
    # both per-kind streams parse every line; report each bad line once
    if on_error is not None:
        reported: set[int] = set()
        original = on_error

        def on_error(line_no: int, reason: str, snippet: str) -> None:
            if line_no not in reported:
                reported.add(line_no)
                original(line_no, reason, snippet)

    streams = [
        ((e.time, rank[e.kind], e.line_no, e)
         for e in stream_events(path, on_error, kinds=(kind,)))
        for kind in DATA_KINDS
    ]
    for *_ignored, event in heapq.merge(*streams):
        yield event
