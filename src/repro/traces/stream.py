"""Streaming trace access: yield records instead of loading files.

:func:`load_trace` materializes an entire capture; a live service
cannot.  This module reads the same JSONL format incrementally:

* :func:`read_header` scans only the prologue (``meta`` / ``schedule``
  / ``flow_key`` / ``expected`` entries) and stops at the first data
  record;
* :func:`stream_events` yields decoded ``step_record`` /
  ``switch_report`` events one at a time, in file order;
* :func:`merged_events` yields them in *completion-time order* — the
  order the paper's analyzer queues entries in (§III-D1) — by merging
  the two per-kind streams (each individually time-sorted by the
  writer) with two file handles and O(1) buffering.

Every reader takes an optional quarantine callback
``on_error(line_no, reason, snippet)``; with it, malformed lines are
reported and skipped instead of raising, so one truncated line cannot
take down a tailing pipeline.

All readers here sniff the on-disk format: a columnar file (see
:mod:`repro.traces.columnar`) is dispatched to the mmap reader, so
every consumer of :func:`read_header` / :func:`merged_events` accepts
either format transparently.

Resumability: for JSONL sources every :class:`TraceEvent` carries the
byte offset of its record (``byte_offset``) and of the byte just past
its terminating newline (``end_offset``).  A consumer that remembers,
per kind, the ``(end_offset, line_no + 1)`` of the last event it fully
processed can restart :func:`merged_events` from exactly that point
via ``resume=`` — the fast-path cursor for the live service's
checkpoints.  Byte offsets are a JSONL implementation detail; the
format-portable coordinate is the per-kind record index
(:attr:`TraceEvent.index` / cursor record counts — see
:func:`repro.traces.trace_events`).  A
file that ends mid-record (a crashed writer, a live tail racing the
recorder) raises :class:`TraceTruncated`, whose ``byte_offset`` is the
first byte of the partial record — i.e. the position to resume reading
from once the writer completes the line.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Optional, Union

from repro.collective.primitives import StepSchedule
from repro.simnet.packet import FlowKey
from repro.traces import serialize
from repro.traces.store import FORMAT_VERSION, TraceFormatError

#: quarantine callback: (line_no, reason, snippet)
ErrorSink = Callable[[int, str, str], None]

#: record kinds that belong to the monitoring stream (vs the prologue)
DATA_KINDS = ("step_record", "switch_report")


class TraceTruncated(TraceFormatError):
    """The file ends in the middle of a record.

    ``byte_offset`` is the offset of the partial record's first byte —
    everything before it is intact, so it doubles as the resume cursor
    once the writer finishes (or the operator chops) the broken tail.
    """

    def __init__(self, message: str, line_no: Optional[int] = None,
                 byte_offset: Optional[int] = None) -> None:
        if byte_offset is not None:
            message = f"{message} (resume at byte {byte_offset})"
        super().__init__(message, line_no)
        self.byte_offset = byte_offset


@dataclass
class TraceHeader:
    """Everything the analyzer needs *before* the stream starts."""

    schedule: StepSchedule
    flow_keys: dict[tuple[str, int], FlowKey] = field(
        default_factory=dict)
    expected_step_times: dict[tuple[str, int], float] = field(
        default_factory=dict)
    pfc_xoff_bytes: int = 0
    meta: dict = field(default_factory=dict)


@dataclass(frozen=True)
class TraceEvent:
    """One decoded monitoring-stream entry.

    ``time`` is the event's completion/emission time in simulation
    nanoseconds — a step record's ``end_time``, a switch report's
    ``time``.  ``byte_offset``/``end_offset`` bracket the record's
    bytes in the source file; they are JSONL-specific and -1 for
    synthetic events and for columnar files.  ``index`` is the
    format-portable coordinate: the event's per-kind record index
    (0-based position among records of its kind), -1 when unknown —
    this is what lets a checkpoint taken against one on-disk format
    resume against the other.
    """

    kind: str
    time: float
    payload: object
    line_no: int
    byte_offset: int = -1
    end_offset: int = -1
    index: int = -1


@dataclass(frozen=True)
class _Line:
    """One physical line with its position and completeness."""

    line_no: int
    start: int
    end: int
    text: str
    complete: bool  # had a terminating newline


def _lines(path: Union[str, Path], start_offset: int = 0,
           start_line: int = 1) -> Iterator[_Line]:
    with Path(path).open("rb") as handle:
        if start_offset > 0:
            handle.seek(start_offset)
        offset = start_offset
        line_no = start_line - 1
        for raw in handle:
            line_no += 1
            start = offset
            offset += len(raw)
            complete = raw.endswith(b"\n")
            text = raw.decode("utf-8", errors="replace").strip()
            if text:
                yield _Line(line_no, start, offset, text, complete)


def _parse(line: _Line,
           on_error: Optional[ErrorSink]) -> Optional[dict]:
    try:
        entry = json.loads(line.text)
        if not isinstance(entry, dict):
            raise TraceFormatError(
                f"expected a JSON object, got {type(entry).__name__}")
        return entry
    except (ValueError, TraceFormatError) as error:
        if not line.complete:
            # the file stops mid-record: not corruption but an
            # incomplete write; surface the resume offset
            truncated = TraceTruncated(
                "file ends mid-record", line.line_no, line.start)
            if on_error is None:
                raise truncated from error
            on_error(line.line_no,
                     f"TraceTruncated: {truncated}", line.text)
            return None
        if on_error is None:
            raise TraceFormatError(str(error), line.line_no) from error
        on_error(line.line_no,
                 f"{type(error).__name__}: {error}", line.text)
        return None


# ----------------------------------------------------------------------
# header
# ----------------------------------------------------------------------
def _is_columnar(path: Union[str, Path]) -> bool:
    from repro.traces import columnar

    return columnar.sniff_format(path) == "columnar"


def read_header(path: Union[str, Path],
                on_error: Optional[ErrorSink] = None) -> TraceHeader:
    """The prologue of a trace in either on-disk format.

    JSONL files are scanned up to the first monitoring-stream record;
    columnar files decode the header straight out of the directory
    (no scan at all).
    """
    if _is_columnar(path):
        from repro.traces.columnar import ColumnarTrace

        with ColumnarTrace(path) as trace:
            return trace.header()
    schedule: Optional[StepSchedule] = None
    flow_keys: dict[tuple[str, int], FlowKey] = {}
    expected: dict[tuple[str, int], float] = {}
    meta: dict = {}
    for line in _lines(path):
        entry = _parse(line, on_error)
        if entry is None:
            continue
        kind = entry.get("kind")
        if kind in DATA_KINDS:
            break
        if kind == "meta":
            meta = entry
            if entry.get("version") != FORMAT_VERSION:
                raise TraceFormatError(
                    f"unsupported trace version: found "
                    f"{entry.get('version')!r}, expected "
                    f"{FORMAT_VERSION!r}", line.line_no)
        elif kind == "schedule":
            schedule = serialize.decode_schedule(entry["schedule"])
        elif kind == "flow_key":
            flow_keys[(entry["node"], int(entry["step"]))] = \
                serialize.decode_flow_key(entry["flow"])
        elif kind == "expected":
            expected[(entry["node"], int(entry["step"]))] = \
                float(entry["time_ns"])
    if schedule is None:
        raise TraceFormatError(f"{path} contains no schedule record")
    return TraceHeader(
        schedule=schedule,
        flow_keys=flow_keys,
        expected_step_times=expected,
        pfc_xoff_bytes=int(meta.get("pfc_xoff_bytes", 0)),
        meta=meta,
    )


# ----------------------------------------------------------------------
# data stream
# ----------------------------------------------------------------------
def _decode_event(entry: dict, line: _Line) -> Optional[TraceEvent]:
    kind = entry.get("kind")
    if kind == "step_record":
        record = serialize.decode_step_record(entry)
        return TraceEvent("step_record", record.end_time, record,
                          line.line_no, line.start, line.end)
    if kind == "switch_report":
        report = serialize.decode_switch_report(entry)
        return TraceEvent("switch_report", report.time, report,
                          line.line_no, line.start, line.end)
    return None


def stream_events(path: Union[str, Path],
                  on_error: Optional[ErrorSink] = None,
                  kinds: tuple[str, ...] = DATA_KINDS,
                  start_offset: int = 0,
                  start_line: int = 1) -> Iterator[TraceEvent]:
    """Yield monitoring-stream events one at a time, in file order.

    ``start_offset``/``start_line`` resume the scan mid-file — pass the
    ``end_offset`` and ``line_no + 1`` of the last event consumed.
    Byte-offset resume is a JSONL concept; columnar files support only
    a whole-file scan here (``start_offset == 0``) — use
    :func:`repro.traces.trace_events` with a cursor for resumable
    cross-format streaming.
    """
    if _is_columnar(path):
        if start_offset > 0:
            raise TraceFormatError(
                "byte-offset resume does not apply to columnar "
                "traces; resume by record index via "
                "repro.traces.trace_events")
        from repro.traces.columnar import ColumnarTrace

        with ColumnarTrace(path) as trace:
            for kind in kinds:
                if kind in DATA_KINDS:
                    yield from trace.iter_kind(kind)
        return
    for line in _lines(path, start_offset, start_line):
        entry = _parse(line, on_error)
        if entry is None or entry.get("kind") not in kinds:
            continue
        if on_error is None:
            event = _decode_event(entry, line)
        else:
            try:
                event = _decode_event(entry, line)
            except Exception as error:  # noqa: BLE001 - quarantine
                on_error(line.line_no,
                         f"{type(error).__name__}: {error}", line.text)
                continue
        if event is not None:
            yield event


def merged_events(path: Union[str, Path],
                  on_error: Optional[ErrorSink] = None,
                  resume: Optional[dict[str, tuple[int, int]]] = None
                  ) -> Iterator[TraceEvent]:
    """Yield data events in completion-time order.

    The writer emits each kind in its own time-sorted run, so a 2-way
    streaming merge over two handles of the same file reconstructs the
    arrival order a live analyzer would have seen, without loading the
    capture.  Ties break toward step records (hosts report a step's
    end before switches report the window that contained it).

    ``resume`` maps a kind to its ``(start_offset, start_line)`` — the
    per-kind positions of a checkpoint cursor.  Each per-kind scan
    restarts there; because both runs are individually time-sorted the
    merge order of the remaining events is identical to the order an
    uninterrupted run would have produced.

    Columnar files replay their precomputed merge permutation — same
    order, no heap, no JSON.  ``resume`` byte offsets are meaningless
    there (raises); resume columnar replays by record counts via
    :func:`repro.traces.trace_events`.
    """
    if _is_columnar(path):
        if resume:
            raise TraceFormatError(
                "byte-offset resume does not apply to columnar "
                "traces; resume by record index via "
                "repro.traces.trace_events")
        from repro.traces.columnar import columnar_events

        yield from columnar_events(path, on_error=on_error)
        return
    rank = {"step_record": 0, "switch_report": 1}
    # both per-kind streams parse every line; report each bad line once
    if on_error is not None:
        reported: set[int] = set()
        original = on_error

        def on_error(line_no: int, reason: str, snippet: str) -> None:
            if line_no not in reported:
                reported.add(line_no)
                original(line_no, reason, snippet)

    positions = resume or {}
    streams = []
    for kind in DATA_KINDS:
        offset, line_no = positions.get(kind, (0, 1))
        streams.append(
            ((e.time, rank[e.kind], e.line_no, e)
             for e in stream_events(path, on_error, kinds=(kind,),
                                    start_offset=offset,
                                    start_line=line_no)))
    for *_ignored, event in heapq.merge(*streams):
        yield event


def scan_resume_offset(path: Union[str, Path]) -> int:
    """The byte offset after the last *complete* record in ``path``.

    A tailing reader that hits :class:`TraceTruncated` (writer still
    mid-line, or crashed mid-write) can poll this to learn where the
    intact prefix ends and resume from there.

    This is explicitly a **JSONL byte offset** — the one place the
    format still leaks bytes into the cursor contract, because only
    JSONL files are appended to by a live writer.  Columnar files are
    written whole and atomically, so a truncated columnar file is
    corrupt, not resumable: this raises :class:`TraceFormatError` for
    them.  Checkpoint cursors proper are format-portable; see
    :class:`repro.live.checkpoint.ReplayCursor`.
    """
    if _is_columnar(path):
        raise TraceFormatError(
            f"{path} is columnar: written atomically, never tailed; "
            f"byte-offset resume does not apply")
    last_end = 0
    for line in _lines(path):
        if line.complete:
            last_end = line.end
        else:
            break
    return last_end
