"""Trace files: capture a live run, reload it, re-run the analysis.

The capture format is JSONL — one JSON object per line, each tagged
with a ``kind``: ``meta`` (versioning + network parameters),
``schedule`` (the decomposition), ``flow_key`` (the (node, step) →
5-tuple map), ``expected`` (per-step ideal execution times),
``step_record`` and ``switch_report`` (the monitoring stream, in
arrival order).  The read-optimized columnar sibling
(:mod:`repro.traces.columnar`) stores the same records; every loader
here accepts either file.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from repro.collective.primitives import SendStep, StepSchedule
from repro.collective.runtime import CollectiveRuntime, StepRecord
from repro.core.analyzer import VedrfolnirAnalyzer, VedrfolnirDiagnosis
from repro.simnet.packet import FlowKey
from repro.simnet.telemetry import SwitchReport
from repro.traces import serialize

if TYPE_CHECKING:  # pragma: no cover
    from repro.live.robustness import Quarantine
    from repro.simnet.network import Network

FORMAT_VERSION = 1


class TraceFormatError(ValueError):
    """A trace file violates the JSONL format contract.

    Carries the offending line number so a corrupt multi-gigabyte
    capture can be triaged without bisecting it by hand.
    """

    def __init__(self, message: str,
                 line_no: Optional[int] = None) -> None:
        if line_no is not None:
            message = f"{message} (line {line_no})"
        super().__init__(message)
        self.line_no = line_no


@dataclass
class Trace:
    """A fully-loaded trace."""

    schedule: StepSchedule
    flow_keys: dict[tuple[str, int], FlowKey]
    expected_step_times: dict[tuple[str, int], float]
    step_records: list[StepRecord]
    reports: list[SwitchReport]
    pfc_xoff_bytes: int
    meta: dict = field(default_factory=dict)
    #: entries whose ``kind`` this reader does not understand (a newer
    #: writer's extension records): kind -> occurrence count
    unknown_kinds: dict[str, int] = field(default_factory=dict)
    #: the same rejects, routed through the live pipeline's fault
    #: containment so offline and online loads share one accounting
    quarantine: Optional["Quarantine"] = None


class TraceRuntime:
    """Duck-typed stand-in for :class:`CollectiveRuntime` that the
    analyzer can consume offline."""

    def __init__(self, trace: Trace) -> None:
        self.schedule = trace.schedule
        self.flow_keys = trace.flow_keys
        self._expected = trace.expected_step_times

    @property
    def collective_flow_keys(self) -> set[FlowKey]:
        return set(self.flow_keys.values())

    def expected_step_time_ns(self, step: SendStep) -> float:
        return self._expected.get((step.node, step.step_index), 0.0)


class TraceRecorder:
    """Captures a live run's monitoring stream.

    Install before starting the collective — it chains onto the
    network's report sink and the runtime's step-end listeners without
    disturbing whatever diagnosis system is also attached.
    """

    def __init__(self, network: "Network",
                 runtime: CollectiveRuntime) -> None:
        self.network = network
        self.runtime = runtime
        self.step_records: list[StepRecord] = []
        self.reports: list[SwitchReport] = []

    @classmethod
    def attach(cls, network: "Network",
               runtime: CollectiveRuntime) -> "TraceRecorder":
        recorder = cls(network, runtime)
        runtime.step_end_listeners.append(recorder.step_records.append)
        previous_sink = network.report_sink

        def tee(report: SwitchReport) -> None:
            recorder.reports.append(report)
            previous_sink(report)

        network.set_report_sink(tee)
        return recorder

    def write(self, path: Union[str, Path]) -> Path:
        """Serialize everything captured so far."""
        path = Path(path)
        runtime = self.runtime
        with path.open("w") as handle:
            def emit(kind: str, payload: dict) -> None:
                handle.write(json.dumps({"kind": kind, **payload}) + "\n")

            emit("meta", {
                "version": FORMAT_VERSION,
                "pfc_xoff_bytes": self.network.config.pfc_xoff_bytes,
                "topology": self.network.topology.name,
                "sim_time_ns": self.network.sim.now,
            })
            emit("schedule",
                 {"schedule": serialize.encode_schedule(runtime.schedule)})
            for (node, idx), key in sorted(runtime.flow_keys.items()):
                emit("flow_key", {
                    "node": node, "step": idx,
                    "flow": serialize.encode_flow_key(key)})
            for step in runtime.schedule.all_steps():
                emit("expected", {
                    "node": step.node, "step": step.step_index,
                    "time_ns": runtime.expected_step_time_ns(step)})
            for record in self.step_records:
                emit("step_record", serialize.encode_step_record(record))
            for report in self.reports:
                emit("switch_report",
                     serialize.encode_switch_report(report))
        return path


def load_trace(path: Union[str, Path],
               quarantine: Optional["Quarantine"] = None) -> Trace:
    """Parse a trace file back into typed objects.

    Unknown record kinds are skipped (forward compatibility) and the
    skips are routed through the same :class:`~repro.live.robustness.
    Quarantine` counter the live pipeline uses, so offline loads and
    online streams report rejects identically.  Pass a ``quarantine``
    to accumulate across several loads; otherwise a fresh one is
    created and returned on :attr:`Trace.quarantine`.

    Accepts either on-disk format: columnar files (see
    :mod:`repro.traces.columnar`) are decoded through the mmap reader
    with identical quarantine/warning semantics.
    """
    # imported lazily: repro.live.__init__ imports the pipeline, which
    # reads traces via this module — a top-level import would cycle
    from repro.live.robustness import Quarantine
    from repro.traces import columnar

    path = Path(path)
    if columnar.sniff_format(path) == "columnar":
        return columnar.load_columnar_trace(path, quarantine)
    if quarantine is None:
        quarantine = Quarantine()
    schedule: Optional[StepSchedule] = None
    flow_keys: dict[tuple[str, int], FlowKey] = {}
    expected: dict[tuple[str, int], float] = {}
    step_records: list[StepRecord] = []
    reports: list[SwitchReport] = []
    meta: dict = {}
    unknown_kinds: dict[str, int] = {}
    with path.open() as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            kind = entry.get("kind")
            if kind == "meta":
                meta = entry
                if entry.get("version") != FORMAT_VERSION:
                    raise TraceFormatError(
                        f"unsupported trace version: found "
                        f"{entry.get('version')!r}, expected "
                        f"{FORMAT_VERSION!r}", line_no)
            elif kind == "schedule":
                schedule = serialize.decode_schedule(entry["schedule"])
            elif kind == "flow_key":
                flow_keys[(entry["node"], int(entry["step"]))] = \
                    serialize.decode_flow_key(entry["flow"])
            elif kind == "expected":
                expected[(entry["node"], int(entry["step"]))] = \
                    float(entry["time_ns"])
            elif kind == "step_record":
                step_records.append(serialize.decode_step_record(entry))
            elif kind == "switch_report":
                reports.append(serialize.decode_switch_report(entry))
            else:
                # forward compatibility: a newer writer's record kinds
                # must not abort the load, but must not vanish either
                label = str(kind)
                if label not in unknown_kinds:
                    warnings.warn(
                        f"skipping unknown trace record kind {kind!r} "
                        f"(first at line {line_no})",
                        stacklevel=2)
                unknown_kinds[label] = unknown_kinds.get(label, 0) + 1
                quarantine.admit(
                    line_no,
                    f"unknown trace record kind: {label}",
                    line)
    if schedule is None:
        raise TraceFormatError(f"{path} contains no schedule record")
    return Trace(
        schedule=schedule,
        flow_keys=flow_keys,
        expected_step_times=expected,
        step_records=step_records,
        reports=reports,
        pfc_xoff_bytes=int(meta.get("pfc_xoff_bytes", 0)),
        meta=meta,
        unknown_kinds=unknown_kinds,
        quarantine=quarantine,
    )


def analyze_trace(trace: Trace,
                  slowdown_factor: float = 1.5) -> VedrfolnirDiagnosis:
    """Run the full §III-D analysis over a loaded trace."""
    analyzer = VedrfolnirAnalyzer(
        pfc_xoff_bytes=trace.pfc_xoff_bytes,
        slowdown_factor=slowdown_factor)
    for record in trace.step_records:
        analyzer.add_step_record(record)
    for report in trace.reports:
        analyzer.add_report(report)
    return analyzer.analyze(TraceRuntime(trace))
