"""Columnar on-disk trace store with mmap replay.

The JSONL trace format keeps the capture greppable, but every hot
consumer — fleet tenant replay, the Fig 9-14 matrix runner, chaos
resume — pays ``json.loads`` per line per pass, and
:func:`~repro.traces.stream.merged_events` parses each line *twice*
(once per per-kind stream).  This module is the read-optimized sibling
format: the same records, stored as per-kind columns (extending the
``ColumnarRing`` idiom from :mod:`repro.simnet.ringbuf` onto disk) so a
replay decodes values straight out of an ``mmap`` with no JSON in the
path.

File layout (container version ``COLUMNAR_VERSION``)::

    +0   magic  b"VCOL" | u16 version | u16 flags(0)
    +8   column blobs + raw-line blob, each 8-byte aligned
    ...  directory (UTF-8 JSON)
    EOF-16  u64 directory offset | b"VCOLTRLR"

The directory maps column names to ``[offset, byte_length, typecode]``
triples; columns are plain ``array``-module payloads read back as
``memoryview.cast`` views over the mmap — zero copies until a record
is actually decoded.  Variable-length children (port entries, per-flow
counters, pause events, meters) are flattened Parquet-style: one child
column set plus a parent offset column of length ``n + 1``, so record
``i`` owns child rows ``off[i]:off[i+1]``.

Strings (node ids, switch ids, poll ids) and flow 5-tuples are
dictionary-encoded once per file; the reader interns every flow key
through :func:`~repro.simnet.packet.intern_flow_key` at open so
decoded records hit the same identity fast paths as live objects.

Losslessness: the prologue (``meta`` / ``schedule`` / ``flow_key`` /
``expected``), blank lines, and any unknown-kind or undecodable lines
are preserved **byte-exact** in a raw-line blob with their original
line numbers; data records are re-encoded through
:mod:`repro.traces.serialize` with the same ``json.dumps`` defaults
the :class:`~repro.traces.store.TraceRecorder` uses.  For any
recorder-written capture the JSONL -> columnar -> JSONL round trip is
therefore byte-identical, which ``repro trace convert`` verifies by
SHA-256 by default.

Replay order: the completion-time merge (time, then step records
before switch reports, then line number — exactly
:func:`~repro.traces.stream.merged_events`) is *precomputed at
conversion time* and stored as a permutation column, so replay is a
single sequential walk with no heap.

mmap lifetime: column views borrow the mapping.  :meth:`ColumnarTrace.
close` releases the views before closing the mmap; decoded records
(``StepRecord`` / ``SwitchReport``) copy everything out and stay valid
after close.  Do not hold raw column views past ``close()``.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import struct
import warnings
from array import array
from bisect import bisect_left, bisect_right
from pathlib import Path
from typing import BinaryIO, Iterator, Optional, Union

from repro.collective.runtime import StepRecord
from repro.simnet.packet import FlowKey, intern_flow_key
from repro.simnet.pfc import PauseEvent, PortRef
from repro.simnet.telemetry import PortTelemetryEntry, SwitchReport
from repro.traces import serialize
from repro.traces.store import FORMAT_VERSION, TraceFormatError
from repro.traces.stream import (
    DATA_KINDS,
    ErrorSink,
    TraceEvent,
    TraceHeader,
    TraceTruncated,
)

#: container version; bump on incompatible layout changes
COLUMNAR_VERSION = 1

MAGIC = b"VCOL"
TRAILER_MAGIC = b"VCOLTRLR"
_PROLOGUE = struct.Struct("<4sHH")  # magic, version, flags
_TRAILER = struct.Struct("<Q8s")    # directory offset, trailer magic

#: raw-line classes (the ``raw.cls`` column)
RAW_BLANK = 0      # whitespace-only line: skipped by every reader
RAW_PROLOGUE = 1   # meta / schedule / flow_key / expected
RAW_UNKNOWN = 2    # well-formed JSON with an unrecognized kind
RAW_MALFORMED = 3  # not JSON / failed decode (kept only when lenient)

_MERGE_RANK = {"step_record": 0, "switch_report": 1}


def sniff_format(path: Union[str, Path]) -> str:
    """``"columnar"`` or ``"jsonl"``, by magic bytes."""
    with Path(path).open("rb") as handle:
        return "columnar" if handle.read(4) == MAGIC else "jsonl"


# ----------------------------------------------------------------------
# writer
# ----------------------------------------------------------------------
class _Dict:
    """Insertion-ordered value -> id dictionary (deterministic)."""

    __slots__ = ("ids", "values")

    def __init__(self) -> None:
        self.ids: dict = {}
        self.values: list = []

    def add(self, value) -> int:
        got = self.ids.get(value)
        if got is None:
            got = len(self.values)
            self.ids[value] = got
            self.values.append(value)
        return got


class _Builder:
    """Accumulates columns while the converter streams the JSONL."""

    def __init__(self) -> None:
        self.strings = _Dict()
        self.flows = _Dict()
        self.cols: dict[str, array] = {}
        for name, code in _COLUMN_TYPES.items():
            self.cols[name] = array(code)
        # offset columns start with their leading 0
        for name in _OFFSET_COLUMNS:
            self.cols[name].append(0)
        self.raw_blob = bytearray()
        self.meta: dict = {}
        self.schedule: Optional[dict] = None
        self.flow_keys: list = []    # [node, step, flow-5-tuple]
        self.expected: list = []     # [node, step, time_ns]
        self.unknown_kinds: dict[str, int] = {}

    def string(self, value: Optional[str]) -> int:
        return -1 if value is None else self.strings.add(value)

    def flow(self, key5: tuple) -> int:
        return self.flows.add(key5)

    def raw_line(self, cls: int, kind: Optional[str], line_no: int,
                 data: bytes) -> None:
        c = self.cols
        c["raw.cls"].append(cls)
        c["raw.kind"].append(self.string(kind))
        c["raw.line"].append(line_no)
        c["raw.off"].append(len(self.raw_blob))
        c["raw.len"].append(len(data))
        self.raw_blob.extend(data)

    # ------------------------------------------------------------------
    def add_step_record(self, entry: dict, line_no: int) -> None:
        record = serialize.decode_step_record(entry)
        c = self.cols
        c["s.end"].append(record.end_time)
        c["s.start"].append(record.start_time)
        c["s.node"].append(self.strings.add(record.node))
        c["s.step"].append(record.step_index)
        c["s.flow"].append(self.flow(tuple(record.flow_key)))
        c["s.bytes"].append(record.size_bytes)
        c["s.recv"].append(self.string(record.recv_source))
        c["s.bind"].append(self.string(record.binding_dependency))
        c["s.line"].append(line_no)

    def add_switch_report(self, entry: dict, line_no: int) -> None:
        report = serialize.decode_switch_report(entry)
        c = self.cols
        c["r.time"].append(report.time)
        c["r.switch"].append(self.strings.add(report.switch_id))
        c["r.poll"].append(self.string(report.poll_id))
        c["r.size"].append(report.size_bytes)
        c["r.line"].append(line_no)
        for port in report.ports:
            c["p.port"].append(port.port)
            c["p.qpk"].append(port.qdepth_pkts)
            c["p.qby"].append(port.qdepth_bytes)
            c["p.paused"].append(1 if port.paused else 0)
            for flow, count in port.flow_pkts.items():
                c["fp.flow"].append(self.flow(tuple(flow)))
                c["fp.val"].append(count)
            for flow, count in port.inqueue_flow_pkts.items():
                c["iq.flow"].append(self.flow(tuple(flow)))
                c["iq.val"].append(count)
            for (fi, fj), weight in port.wait_weights.items():
                c["ww.fi"].append(self.flow(tuple(fi)))
                c["ww.fj"].append(self.flow(tuple(fj)))
                c["ww.val"].append(weight)
            c["p.fp"].append(len(c["fp.flow"]))
            c["p.iq"].append(len(c["iq.flow"]))
            c["p.ww"].append(len(c["ww.val"]))
        for (inp, out), value in report.port_meters.items():
            c["mt.in"].append(inp)
            c["mt.out"].append(out)
            c["mt.val"].append(value)
        for prefix, pauses in (("pr", report.pause_received),
                               ("ps", report.pause_sent)):
            for pause in pauses:
                c[f"{prefix}.time"].append(pause.time)
                c[f"{prefix}.sn"].append(
                    self.strings.add(pause.sender.node))
                c[f"{prefix}.sp"].append(pause.sender.port)
                c[f"{prefix}.vn"].append(
                    self.strings.add(pause.victim.node))
                c[f"{prefix}.vp"].append(pause.victim.port)
                c[f"{prefix}.buf"].append(pause.buffer_bytes_at_send)
                c[f"{prefix}.gen"].append(1 if pause.genuine else 0)
        for flow, count in report.ttl_drops.items():
            c["ttl.flow"].append(self.flow(tuple(flow)))
            c["ttl.val"].append(count)
        c["r.ports"].append(len(c["p.port"]))
        c["r.mt"].append(len(c["mt.val"]))
        c["r.pr"].append(len(c["pr.time"]))
        c["r.ps"].append(len(c["ps.time"]))
        c["r.ttl"].append(len(c["ttl.val"]))

    # ------------------------------------------------------------------
    def finish_merge(self) -> None:
        """Precompute the completion-time merge permutation."""
        c = self.cols
        order = sorted(
            [(c["s.end"][i], 0, c["s.line"][i], i)
             for i in range(len(c["s.end"]))] +
            [(c["r.time"][i], 1, c["r.line"][i], i)
             for i in range(len(c["r.time"]))])
        for _time, rank, _line, idx in order:
            c["mg.kind"].append(rank)
            c["mg.idx"].append(idx)


#: column name -> array typecode.  'I' ids index the string/flow
#: dictionaries; 'i' ids use -1 for None; offset columns are 'Q' and
#: one element longer than their parent.
_COLUMN_TYPES = {
    # step records
    "s.end": "d", "s.start": "d", "s.node": "I", "s.step": "I",
    "s.flow": "I", "s.bytes": "q", "s.recv": "i", "s.bind": "i",
    "s.line": "Q",
    # switch reports (+ child offsets)
    "r.time": "d", "r.switch": "I", "r.poll": "i", "r.size": "q",
    "r.line": "Q",
    "r.ports": "Q", "r.mt": "Q", "r.pr": "Q", "r.ps": "Q",
    "r.ttl": "Q",
    # port entries (+ per-port child offsets)
    "p.port": "I", "p.qpk": "q", "p.qby": "q", "p.paused": "B",
    "p.fp": "Q", "p.iq": "Q", "p.ww": "Q",
    # per-port flow counters
    "fp.flow": "I", "fp.val": "d",
    "iq.flow": "I", "iq.val": "q",
    "ww.fi": "I", "ww.fj": "I", "ww.val": "d",
    # per-report meters / pauses / drops
    "mt.in": "q", "mt.out": "q", "mt.val": "d",
    "pr.time": "d", "pr.sn": "I", "pr.sp": "q", "pr.vn": "I",
    "pr.vp": "q", "pr.buf": "q", "pr.gen": "B",
    "ps.time": "d", "ps.sn": "I", "ps.sp": "q", "ps.vn": "I",
    "ps.vp": "q", "ps.buf": "q", "ps.gen": "B",
    "ttl.flow": "I", "ttl.val": "q",
    # merge permutation
    "mg.kind": "B", "mg.idx": "Q",
    # raw (prologue / blank / unknown / malformed) lines
    "raw.cls": "B", "raw.kind": "i", "raw.line": "Q", "raw.off": "Q",
    "raw.len": "Q",
}

_OFFSET_COLUMNS = ("r.ports", "r.mt", "r.pr", "r.ps", "r.ttl",
                   "p.fp", "p.iq", "p.ww")


def _is_sorted(column) -> bool:
    return all(column[i - 1] <= column[i]
               for i in range(1, len(column)))


def _raw_bytes_lines(handle: BinaryIO) -> Iterator[tuple[int, bytes]]:
    line_no = 0
    for raw in handle:
        line_no += 1
        yield line_no, raw


def _build_from_jsonl(src: Union[str, Path],
                      on_error: Optional[ErrorSink] = None) -> _Builder:
    """Stream a JSONL trace once into a column builder.

    Without ``on_error`` any malformed or undecodable line raises
    (:class:`TraceTruncated` for a missing final newline); with it the
    line is preserved byte-exact as a ``RAW_MALFORMED`` raw line and
    reported, mirroring the lenient JSONL readers.
    """
    builder = _Builder()
    with Path(src).open("rb") as handle:
        for line_no, raw in _raw_bytes_lines(handle):
            text = raw.decode("utf-8", errors="replace").strip()
            if not text:
                builder.raw_line(RAW_BLANK, None, line_no, raw)
                continue
            kind: Optional[str] = None
            try:
                entry = json.loads(text)
                if not isinstance(entry, dict):
                    raise TraceFormatError(
                        f"expected a JSON object, got "
                        f"{type(entry).__name__}")
                kind = entry.get("kind")
                if kind == "step_record":
                    builder.add_step_record(entry, line_no)
                elif kind == "switch_report":
                    builder.add_switch_report(entry, line_no)
                elif kind == "meta":
                    if entry.get("version") != FORMAT_VERSION:
                        raise TraceFormatError(
                            f"unsupported trace version: found "
                            f"{entry.get('version')!r}, expected "
                            f"{FORMAT_VERSION!r}", line_no)
                    builder.meta = entry
                    builder.raw_line(RAW_PROLOGUE, kind, line_no, raw)
                elif kind == "schedule":
                    # decode once so a corrupt prologue fails the
                    # conversion, but store the original JSON form
                    serialize.decode_schedule(entry["schedule"])
                    builder.schedule = entry["schedule"]
                    builder.raw_line(RAW_PROLOGUE, kind, line_no, raw)
                elif kind == "flow_key":
                    serialize.decode_flow_key(entry["flow"])
                    builder.flow_keys.append(
                        [entry["node"], int(entry["step"]),
                         list(entry["flow"])])
                    builder.raw_line(RAW_PROLOGUE, kind, line_no, raw)
                elif kind == "expected":
                    builder.expected.append(
                        [entry["node"], int(entry["step"]),
                         float(entry["time_ns"])])
                    builder.raw_line(RAW_PROLOGUE, kind, line_no, raw)
                else:
                    label = str(kind)
                    builder.unknown_kinds[label] = \
                        builder.unknown_kinds.get(label, 0) + 1
                    builder.raw_line(RAW_UNKNOWN, label, line_no, raw)
            except TraceTruncated:
                raise
            except Exception as error:  # noqa: BLE001 - quarantine
                if not raw.endswith(b"\n") \
                        and isinstance(error, ValueError):
                    truncated = TraceTruncated(
                        "file ends mid-record", line_no, None)
                    if on_error is None:
                        raise truncated from error
                    on_error(line_no, f"TraceTruncated: {truncated}",
                             text)
                elif on_error is None:
                    if isinstance(error, TraceFormatError):
                        raise
                    raise TraceFormatError(
                        f"{type(error).__name__}: {error}",
                        line_no) from error
                else:
                    on_error(line_no,
                             f"{type(error).__name__}: {error}", text)
                builder.raw_line(RAW_MALFORMED, None, line_no, raw)
    if builder.schedule is None:
        raise TraceFormatError(f"{src} contains no schedule record")
    builder.finish_merge()
    return builder


def _emit(builder: _Builder, sink) -> None:
    """Serialize a builder into ``sink`` (needs only ``.write``)."""
    sink.write(_PROLOGUE.pack(MAGIC, COLUMNAR_VERSION, 0))
    offset = _PROLOGUE.size
    columns: dict[str, list] = {}

    def aligned_write(data: bytes) -> tuple[int, int]:
        nonlocal offset
        pad = (-offset) % 8
        if pad:
            sink.write(b"\x00" * pad)
            offset += pad
        start = offset
        sink.write(data)
        offset += len(data)
        return start, len(data)

    for name, column in builder.cols.items():
        start, length = aligned_write(column.tobytes())
        columns[name] = [start, length, column.typecode]
    blob_start, blob_len = aligned_write(bytes(builder.raw_blob))
    directory = {
        "format": "repro-columnar",
        "version": COLUMNAR_VERSION,
        "header": {
            "meta": builder.meta,
            "schedule": builder.schedule,
            "flow_keys": builder.flow_keys,
            "expected": builder.expected,
        },
        "strings": builder.strings.values,
        "flows": [list(flow) for flow in builder.flows.values],
        "counts": {
            "step_record": len(builder.cols["s.end"]),
            "switch_report": len(builder.cols["r.time"]),
            "raw": len(builder.cols["raw.cls"]),
        },
        "time_sorted": {
            "step_record": _is_sorted(builder.cols["s.end"]),
            "switch_report": _is_sorted(builder.cols["r.time"]),
        },
        "unknown_kinds": builder.unknown_kinds,
        "columns": columns,
        "raw_blob": [blob_start, blob_len],
    }
    payload = json.dumps(directory,
                         separators=(",", ":")).encode("utf-8")
    directory_offset = offset
    sink.write(payload)
    sink.write(_TRAILER.pack(directory_offset, TRAILER_MAGIC))


def write_columnar(src: Union[str, Path], dst: Union[str, Path],
                   on_error: Optional[ErrorSink] = None) -> Path:
    """Convert a JSONL trace to a columnar file (atomically).

    The output is deterministic — converting the same input twice
    yields identical bytes — which is what makes
    :func:`content_address` a stable cache key.
    """
    import os

    dst = Path(dst)
    builder = _build_from_jsonl(src, on_error)
    tmp = dst.with_name(dst.name + ".tmp")
    try:
        with tmp.open("wb") as handle:
            _emit(builder, handle)
        os.replace(tmp, dst)
    finally:
        tmp.unlink(missing_ok=True)
    return dst


class _HashSink:
    __slots__ = ("hasher",)

    def __init__(self) -> None:
        self.hasher = hashlib.sha256()

    def write(self, data: bytes) -> int:
        self.hasher.update(data)
        return len(data)


def content_address(path: Union[str, Path]) -> str:
    """SHA-256 content address of a trace *in its columnar form*.

    For a columnar file this is the digest of the file bytes; for a
    JSONL file the deterministic conversion is streamed through the
    hash without touching disk.  Both spellings of the same capture
    therefore share one address — the cache key the experiment runner
    uses for trace-derived artifacts.
    """
    path = Path(path)
    if sniff_format(path) == "columnar":
        hasher = hashlib.sha256()
        with path.open("rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                hasher.update(chunk)
        return hasher.hexdigest()
    builder = _build_from_jsonl(path)
    sink = _HashSink()
    _emit(builder, sink)
    return sink.hasher.hexdigest()


# ----------------------------------------------------------------------
# reader
# ----------------------------------------------------------------------
class ColumnarTrace:
    """mmap-backed zero-copy reader for one columnar trace file.

    Opens the file, maps it read-only, and exposes typed column views
    plus record decoders.  Use as a context manager; see the module
    docstring for mmap lifetime rules.
    """

    def __init__(self, path: Union[str, Path],
                 use_mmap: bool = True) -> None:
        self.path = Path(path)
        self._mm: Optional[mmap.mmap] = None
        self._views: dict[str, memoryview] = {}
        self._header: Optional[TraceHeader] = None
        handle = self.path.open("rb")
        try:
            if use_mmap:
                self._mm = mmap.mmap(handle.fileno(), 0,
                                     access=mmap.ACCESS_READ)
                buf = memoryview(self._mm)
            else:
                buf = memoryview(handle.read())
        finally:
            handle.close()
        self._buf = buf
        if len(buf) < _PROLOGUE.size + _TRAILER.size:
            raise TraceFormatError(f"{path}: not a columnar trace "
                                   f"(file too short)")
        magic, version, _flags = _PROLOGUE.unpack(
            buf[:_PROLOGUE.size])
        if magic != MAGIC:
            raise TraceFormatError(f"{path}: bad magic {magic!r}")
        if version != COLUMNAR_VERSION:
            raise TraceFormatError(
                f"{path}: unsupported columnar version {version} "
                f"(expected {COLUMNAR_VERSION})")
        dir_off, trailer = _TRAILER.unpack(buf[-_TRAILER.size:])
        if trailer != TRAILER_MAGIC:
            raise TraceFormatError(
                f"{path}: missing trailer (truncated write?)")
        try:
            directory = json.loads(
                bytes(buf[dir_off:len(buf) - _TRAILER.size]))
        except ValueError as error:
            raise TraceFormatError(
                f"{path}: corrupt directory: {error}") from error
        self.directory = directory
        self.version = directory["version"]
        self.counts: dict[str, int] = directory["counts"]
        self.time_sorted: dict[str, bool] = directory.get(
            "time_sorted", {})
        self.unknown_kinds: dict[str, int] = directory.get(
            "unknown_kinds", {})
        self.strings: list[str] = directory["strings"]
        self.flows: list[FlowKey] = [
            intern_flow_key(serialize.decode_flow_key(flow))
            for flow in directory["flows"]]
        self._flow_ids = {flow: i
                          for i, flow in enumerate(self.flows)}
        self._columns = directory["columns"]
        blob_start, blob_len = directory["raw_blob"]
        self._raw_blob = buf[blob_start:blob_start + blob_len]
        self._bind_decoders()

    # ------------------------------------------------------------------
    def col(self, name: str) -> memoryview:
        """Zero-copy typed view of one column."""
        view = self._views.get(name)
        if view is None:
            start, length, code = self._columns[name]
            view = self._buf[start:start + length].cast(code)
            self._views[name] = view
        return view

    def close(self) -> None:
        """Release all column views, then the mapping.

        The record decoders hold views in their closure cells, so
        they are replaced by stubs here; decoded records are plain
        owning objects and stay valid.
        """
        def closed(_i: int):
            raise ValueError(f"{self.path}: trace is closed")

        self.step_record = closed
        self.switch_report = closed
        self._views.clear()
        try:
            self._raw_blob.release()
            self._buf.release()
            if self._mm is not None:
                self._mm.close()
        except BufferError:
            # a live traceback or abandoned generator frame still
            # pins a column view; the map unmaps when it is collected
            pass
        self._mm = None

    def __enter__(self) -> "ColumnarTrace":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def header(self) -> TraceHeader:
        """The prologue, decoded once and cached."""
        if self._header is None:
            head = self.directory["header"]
            meta = head["meta"]
            self._header = TraceHeader(
                schedule=serialize.decode_schedule(head["schedule"]),
                flow_keys={(node, int(step)):
                           serialize.decode_flow_key(flow)
                           for node, step, flow in head["flow_keys"]},
                expected_step_times={(node, int(step)): float(t)
                                     for node, step, t
                                     in head["expected"]},
                pfc_xoff_bytes=int(meta.get("pfc_xoff_bytes", 0)),
                meta=meta,
            )
        return self._header

    # ------------------------------------------------------------------
    def _bind_decoders(self) -> None:
        """Build the record decoders as closures over pre-cast column
        views.

        Decoding is the replay hot path; a per-field ``self.col(...)``
        dict lookup (~40 per switch report) would dominate it, so the
        views are bound once into closure cells — free-variable loads
        are the cheapest name access CPython has.  The closures are
        installed as instance attributes ``step_record`` /
        ``switch_report``.
        """
        col = self.col
        strings = self.strings
        flows = self.flows
        s_end, s_start = col("s.end"), col("s.start")
        s_node, s_step = col("s.node"), col("s.step")
        s_flow, s_bytes = col("s.flow"), col("s.bytes")
        s_recv, s_bind = col("s.recv"), col("s.bind")

        def step_record(i: int) -> StepRecord:
            """Decode step record ``i`` (a fresh, owning object)."""
            recv = s_recv[i]
            bind = s_bind[i]
            return StepRecord(
                strings[s_node[i]], s_step[i], flows[s_flow[i]],
                s_bytes[i], s_start[i], s_end[i],
                None if recv < 0 else strings[recv],
                None if bind < 0 else strings[bind])

        r_time, r_switch = col("r.time"), col("r.switch")
        r_poll, r_size = col("r.poll"), col("r.size")
        ports_off = col("r.ports")
        mt_off, pr_off = col("r.mt"), col("r.pr")
        ps_off, ttl_off = col("r.ps"), col("r.ttl")
        p_port, p_qpk = col("p.port"), col("p.qpk")
        p_qby, p_paused = col("p.qby"), col("p.paused")
        p_fp, p_iq, p_ww = col("p.fp"), col("p.iq"), col("p.ww")
        fp_flow, fp_val = col("fp.flow"), col("fp.val")
        iq_flow, iq_val = col("iq.flow"), col("iq.val")
        ww_fi, ww_fj, ww_val = col("ww.fi"), col("ww.fj"), col("ww.val")
        mt_in, mt_out, mt_val = col("mt.in"), col("mt.out"), \
            col("mt.val")
        ttl_flow, ttl_val = col("ttl.flow"), col("ttl.val")
        pr_cols = tuple(col(f"pr.{f}") for f in
                        ("time", "sn", "sp", "vn", "vp", "buf", "gen"))
        ps_cols = tuple(col(f"ps.{f}") for f in
                        ("time", "sn", "sp", "vn", "vp", "buf", "gen"))

        def pauses(cols: tuple, lo: int, hi: int) -> list[PauseEvent]:
            t, sn, sp, vn, vp, buf, gen = cols
            return [PauseEvent(t[k],
                               PortRef(strings[sn[k]], sp[k]),
                               PortRef(strings[vn[k]], vp[k]),
                               buf[k], bool(gen[k]))
                    for k in range(lo, hi)]

        # decode allocates the records via ``__new__`` + a ``__dict__``
        # literal instead of the dataclass __init__: the per-field
        # store loop is the single biggest cost at millions of child
        # entries, and the dict literal is one bytecode.  Empty child
        # ranges (most pause/ttl lists, many counter maps) skip the
        # slice+zip machinery entirely.
        new = object.__new__
        port_cls, report_cls = PortTelemetryEntry, SwitchReport

        def switch_report(i: int) -> SwitchReport:
            """Decode switch report ``i`` (a fresh, owning object)."""
            p0, p1 = ports_off[i], ports_off[i + 1]
            ports = []
            f0, q0, w0 = p_fp[p0], p_iq[p0], p_ww[p0]
            for p in range(p0, p1):
                f1, q1, w1 = p_fp[p + 1], p_iq[p + 1], p_ww[p + 1]
                entry = new(port_cls)
                entry.__dict__ = {
                    "port": p_port[p],
                    "qdepth_pkts": p_qpk[p],
                    "qdepth_bytes": p_qby[p],
                    "paused": bool(p_paused[p]),
                    "flow_pkts":
                        {flows[f]: v
                         for f, v in zip(fp_flow[f0:f1],
                                         fp_val[f0:f1])}
                        if f1 > f0 else {},
                    "inqueue_flow_pkts":
                        {flows[f]: v
                         for f, v in zip(iq_flow[q0:q1],
                                         iq_val[q0:q1])}
                        if q1 > q0 else {},
                    "wait_weights":
                        {(flows[fi], flows[fj]): v
                         for fi, fj, v in zip(ww_fi[w0:w1],
                                              ww_fj[w0:w1],
                                              ww_val[w0:w1])}
                        if w1 > w0 else {},
                }
                ports.append(entry)
                f0, q0, w0 = f1, q1, w1
            m0, m1 = mt_off[i], mt_off[i + 1]
            t0, t1 = ttl_off[i], ttl_off[i + 1]
            r0, r1 = pr_off[i], pr_off[i + 1]
            s0, s1 = ps_off[i], ps_off[i + 1]
            poll = r_poll[i]
            report = new(report_cls)
            report.__dict__ = {
                "switch_id": strings[r_switch[i]],
                "time": r_time[i],
                "poll_id": None if poll < 0 else strings[poll],
                "ports": ports,
                "port_meters":
                    {(inp, out): v
                     for inp, out, v in zip(mt_in[m0:m1],
                                            mt_out[m0:m1],
                                            mt_val[m0:m1])}
                    if m1 > m0 else {},
                "pause_received":
                    pauses(pr_cols, r0, r1) if r1 > r0 else [],
                "pause_sent":
                    pauses(ps_cols, s0, s1) if s1 > s0 else [],
                "ttl_drops":
                    {flows[f]: v
                     for f, v in zip(ttl_flow[t0:t1],
                                     ttl_val[t0:t1])}
                    if t1 > t0 else {},
                "size_bytes": r_size[i],
            }
            return report

        self.step_record = step_record
        self.switch_report = switch_report

    # ------------------------------------------------------------------
    def iter_kind(self, kind: str, start: int = 0
                  ) -> Iterator[TraceEvent]:
        """Events of one kind in record order, from index ``start``."""
        if kind == "step_record":
            decode, lines = self.step_record, self.col("s.line")
            times = self.col("s.end")
        elif kind == "switch_report":
            decode, lines = self.switch_report, self.col("r.line")
            times = self.col("r.time")
        else:
            raise ValueError(f"unknown data kind: {kind!r}")
        for i in range(start, self.counts[kind]):
            yield TraceEvent(kind, times[i], decode(i), lines[i],
                             index=i)

    def iter_events(self, skip: Optional[dict[str, int]] = None
                    ) -> Iterator[TraceEvent]:
        """All data events in completion-time order (the stored merge
        permutation — identical to :func:`~repro.traces.stream.
        merged_events` over the JSONL form).

        ``skip`` maps a kind to the number of its records already
        consumed (a :meth:`~repro.live.checkpoint.ReplayCursor.
        resume_counts` dict); those are skipped without decoding.
        """
        mg_kind, mg_idx = self.col("mg.kind"), self.col("mg.idx")
        s_skip = w_skip = 0
        if skip:
            s_skip = int(skip.get("step_record", 0))
            w_skip = int(skip.get("switch_report", 0))
        s_lines, w_lines = self.col("s.line"), self.col("r.line")
        s_times, w_times = self.col("s.end"), self.col("r.time")
        step, report = self.step_record, self.switch_report
        # TraceEvent is a frozen dataclass; its __init__ routes every
        # field through object.__setattr__, which at replay volume is
        # measurable — build the instances via __dict__ directly
        # (object.__setattr__ bypasses the frozen guard)
        new = object.__new__
        setattr_ = object.__setattr__
        event_cls = TraceEvent
        for j in range(len(mg_kind)):
            i = mg_idx[j]
            if mg_kind[j] == 0:
                if i < s_skip:
                    continue
                event = new(event_cls)
                setattr_(event, "__dict__", {
                    "kind": "step_record", "time": s_times[i],
                    "payload": step(i), "line_no": s_lines[i],
                    "byte_offset": -1, "end_offset": -1, "index": i})
            else:
                if i < w_skip:
                    continue
                event = new(event_cls)
                setattr_(event, "__dict__", {
                    "kind": "switch_report", "time": w_times[i],
                    "payload": report(i), "line_no": w_lines[i],
                    "byte_offset": -1, "end_offset": -1, "index": i})
            yield event

    def iter_raw_lines(self) -> Iterator[tuple[int, Optional[str],
                                               int, bytes]]:
        """Yield ``(cls, kind, line_no, original_bytes)`` for every
        preserved non-data line, in file order."""
        cls_col = self.col("raw.cls")
        kind_col = self.col("raw.kind")
        line_col = self.col("raw.line")
        off_col, len_col = self.col("raw.off"), self.col("raw.len")
        blob = self._raw_blob
        for i in range(len(cls_col)):
            kind_id = kind_col[i]
            yield (cls_col[i],
                   None if kind_id < 0 else self.strings[kind_id],
                   line_col[i],
                   bytes(blob[off_col[i]:off_col[i] + len_col[i]]))

    # ------------------------------------------------------------------
    # zero-copy query layer
    # ------------------------------------------------------------------
    def _time_column(self, kind: str) -> memoryview:
        if kind == "step_record":
            return self.col("s.end")
        if kind == "switch_report":
            return self.col("r.time")
        raise ValueError(f"unknown data kind: {kind!r}")

    def time_range(self, kind: str, start: float, end: float
                   ) -> list[int]:
        """Record indices of ``kind`` with event time in
        ``[start, end]``, without decoding any record.

        Binary-searches the time column when the writer marked it
        sorted (always true for recorder-written traces), otherwise
        scans it.
        """
        times = self._time_column(kind)
        if self.time_sorted.get(kind):
            return list(range(bisect_left(times, start),
                              bisect_right(times, end)))
        return [i for i in range(len(times))
                if start <= times[i] <= end]

    def flow_id(self, flow: FlowKey) -> Optional[int]:
        return self._flow_ids.get(intern_flow_key(flow))

    def steps_for_flow(self, flow: FlowKey) -> list[int]:
        """Step-record indices whose 5-tuple equals ``flow``."""
        fid = self.flow_id(flow)
        if fid is None:
            return []
        column = self.col("s.flow")
        return [i for i in range(len(column)) if column[i] == fid]

    def reports_for_flow(self, flow: FlowKey) -> list[int]:
        """Switch-report indices that mention ``flow`` in any per-port
        counter (``flow_pkts`` / ``inqueue`` / ``wait_weights``) or in
        ``ttl_drops`` — an integer scan over child columns only."""
        fid = self.flow_id(flow)
        if fid is None:
            return []
        col = self.col
        ports_off = col("r.ports")
        p_fp, p_iq, p_ww = col("p.fp"), col("p.iq"), col("p.ww")
        fp_flow, iq_flow = col("fp.flow"), col("iq.flow")
        ww_fi, ww_fj = col("ww.fi"), col("ww.fj")
        ttl_off, ttl_flow = col("r.ttl"), col("ttl.flow")
        hits = []
        for i in range(self.counts["switch_report"]):
            found = any(ttl_flow[k] == fid
                        for k in range(ttl_off[i], ttl_off[i + 1]))
            for p in range(ports_off[i], ports_off[i + 1]):
                if found:
                    break
                found = (
                    any(fp_flow[k] == fid
                        for k in range(p_fp[p], p_fp[p + 1]))
                    or any(iq_flow[k] == fid
                           for k in range(p_iq[p], p_iq[p + 1]))
                    or any(ww_fi[k] == fid or ww_fj[k] == fid
                           for k in range(p_ww[p], p_ww[p + 1])))
            if found:
                hits.append(i)
        return hits

    def reports_for_port(self, switch_id: str, port: int
                         ) -> list[int]:
        """Switch-report indices from ``switch_id`` carrying a
        telemetry entry for ``port``."""
        try:
            sid = self.strings.index(switch_id)
        except ValueError:
            return []
        col = self.col
        switches = col("r.switch")
        ports_off, p_port = col("r.ports"), col("p.port")
        return [i for i in range(self.counts["switch_report"])
                if switches[i] == sid
                and any(p_port[p] == port
                        for p in range(ports_off[i],
                                       ports_off[i + 1]))]


# ----------------------------------------------------------------------
# columnar -> JSONL reconstruction
# ----------------------------------------------------------------------
def iter_jsonl_lines(trace: ColumnarTrace) -> Iterator[bytes]:
    """Yield the reconstructed JSONL file line by line.

    Raw-preserved lines are emitted byte-exact; data records are
    re-encoded with the recorder's ``json.dumps`` defaults.  For any
    recorder-written source the concatenation equals the original
    file's bytes.
    """
    dumps = json.dumps
    entries: list[tuple[int, int, int]] = []  # (line_no, tag, idx)
    for i, line_no in enumerate(trace.col("raw.line")):
        entries.append((line_no, 0, i))
    for i, line_no in enumerate(trace.col("s.line")):
        entries.append((line_no, 1, i))
    for i, line_no in enumerate(trace.col("r.line")):
        entries.append((line_no, 2, i))
    entries.sort()
    raw_off, raw_len = trace.col("raw.off"), trace.col("raw.len")
    blob = trace._raw_blob
    for _line_no, tag, i in entries:
        if tag == 0:
            yield bytes(blob[raw_off[i]:raw_off[i] + raw_len[i]])
        elif tag == 1:
            payload = serialize.encode_step_record(
                trace.step_record(i))
            yield (dumps({"kind": "step_record", **payload})
                   + "\n").encode("utf-8")
        else:
            payload = serialize.encode_switch_report(
                trace.switch_report(i))
            yield (dumps({"kind": "switch_report", **payload})
                   + "\n").encode("utf-8")


def write_jsonl(src: Union[str, Path], dst: Union[str, Path]) -> Path:
    """Convert a columnar trace back to JSONL (atomically)."""
    import os

    dst = Path(dst)
    tmp = dst.with_name(dst.name + ".tmp")
    try:
        with ColumnarTrace(src) as trace, tmp.open("wb") as handle:
            for line in iter_jsonl_lines(trace):
                handle.write(line)
        os.replace(tmp, dst)
    finally:
        tmp.unlink(missing_ok=True)
    return dst


def jsonl_digest(path: Union[str, Path]) -> str:
    """SHA-256 of the trace's canonical JSONL bytes.

    For a JSONL file this is simply the file digest (matching the
    ``trace_sha256`` golden pins); for a columnar file the JSONL form
    is reconstructed through the streaming hash.
    """
    hasher = hashlib.sha256()
    path = Path(path)
    if sniff_format(path) == "jsonl":
        with path.open("rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                hasher.update(chunk)
    else:
        with ColumnarTrace(path) as trace:
            for line in iter_jsonl_lines(trace):
                hasher.update(line)
    return hasher.hexdigest()


# ----------------------------------------------------------------------
# batch load (Trace parity with the JSONL loader)
# ----------------------------------------------------------------------
def load_columnar_trace(path: Union[str, Path],
                        quarantine=None):
    """Load a columnar file into a :class:`~repro.traces.store.Trace`
    with the same quarantine/warning semantics as the JSONL loader."""
    from repro.live.robustness import Quarantine
    from repro.traces.store import Trace

    if quarantine is None:
        quarantine = Quarantine()
    with ColumnarTrace(path) as trace:
        header = trace.header()
        unknown_kinds: dict[str, int] = {}
        for cls, kind, line_no, raw in trace.iter_raw_lines():
            if cls == RAW_UNKNOWN:
                label = str(kind)
                if label not in unknown_kinds:
                    warnings.warn(
                        f"skipping unknown trace record kind "
                        f"{label!r} (first at line {line_no})",
                        stacklevel=2)
                unknown_kinds[label] = unknown_kinds.get(label, 0) + 1
                quarantine.admit(
                    line_no, f"unknown trace record kind: {label}",
                    raw.decode("utf-8", errors="replace").strip())
            elif cls == RAW_MALFORMED:
                # the strict JSONL loader would have raised here
                raise TraceFormatError(
                    "columnar trace preserves a malformed source "
                    "line", line_no)
        step_records = [trace.step_record(i)
                        for i in range(trace.counts["step_record"])]
        reports = [trace.switch_report(i)
                   for i in range(trace.counts["switch_report"])]
        return Trace(
            schedule=header.schedule,
            flow_keys=header.flow_keys,
            expected_step_times=header.expected_step_times,
            step_records=step_records,
            reports=reports,
            pfc_xoff_bytes=header.pfc_xoff_bytes,
            meta=header.meta,
            unknown_kinds=unknown_kinds,
            quarantine=quarantine,
        )


def columnar_events(path: Union[str, Path],
                    on_error: Optional[ErrorSink] = None,
                    skip: Optional[dict[str, int]] = None
                    ) -> Iterator[TraceEvent]:
    """Standalone merged-order event stream over a columnar file.

    Mirrors :func:`~repro.traces.stream.merged_events`: preserved
    malformed lines are routed to ``on_error`` (or raise without one)
    exactly as the lenient JSONL scan would report them.
    """
    with ColumnarTrace(path) as trace:
        if trace.counts.get("raw"):
            for cls, _kind, line_no, raw in trace.iter_raw_lines():
                if cls != RAW_MALFORMED:
                    continue
                snippet = raw.decode("utf-8",
                                     errors="replace").strip()
                if on_error is None:
                    raise TraceFormatError(
                        "columnar trace preserves a malformed "
                        "source line", line_no)
                on_error(line_no, "preserved malformed line",
                         snippet)
        yield from trace.iter_events(skip=skip)


assert set(_OFFSET_COLUMNS) <= set(_COLUMN_TYPES), \
    "offset columns must be declared"
