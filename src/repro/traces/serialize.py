"""JSON encoding/decoding for monitoring data types.

Everything is plain dicts/lists so the on-disk format is stable,
greppable JSONL; flow keys and port refs round-trip losslessly.
"""

from __future__ import annotations

from repro.collective.primitives import (
    CollectiveOp,
    SendStep,
    StepSchedule,
)
from repro.collective.runtime import StepRecord
from repro.simnet.packet import FlowKey
from repro.simnet.pfc import PauseEvent, PortRef
from repro.simnet.telemetry import PortTelemetryEntry, SwitchReport


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------
def encode_flow_key(key: FlowKey) -> list:
    return [key.src, key.dst, key.src_port, key.dst_port, key.protocol]


def decode_flow_key(data: list) -> FlowKey:
    return FlowKey(data[0], data[1], int(data[2]), int(data[3]), data[4])


def encode_port_ref(ref: PortRef) -> list:
    return [ref.node, ref.port]


def decode_port_ref(data: list) -> PortRef:
    return PortRef(data[0], int(data[1]))


def encode_pause_event(event: PauseEvent) -> dict:
    return {
        "time": event.time,
        "sender": encode_port_ref(event.sender),
        "victim": encode_port_ref(event.victim),
        "buffer": event.buffer_bytes_at_send,
        "genuine": event.genuine,
    }


def decode_pause_event(data: dict) -> PauseEvent:
    return PauseEvent(
        time=float(data["time"]),
        sender=decode_port_ref(data["sender"]),
        victim=decode_port_ref(data["victim"]),
        buffer_bytes_at_send=int(data["buffer"]),
        genuine=bool(data["genuine"]),
    )


# ----------------------------------------------------------------------
# step records
# ----------------------------------------------------------------------
def encode_step_record(record: StepRecord) -> dict:
    return {
        "node": record.node,
        "step": record.step_index,
        "flow": encode_flow_key(record.flow_key),
        "bytes": record.size_bytes,
        "start": record.start_time,
        "end": record.end_time,
        "recv_source": record.recv_source,
        "binding": record.binding_dependency,
    }


def decode_step_record(data: dict) -> StepRecord:
    return StepRecord(
        node=data["node"],
        step_index=int(data["step"]),
        flow_key=decode_flow_key(data["flow"]),
        size_bytes=int(data["bytes"]),
        start_time=float(data["start"]),
        end_time=float(data["end"]),
        recv_source=data.get("recv_source"),
        binding_dependency=data.get("binding"),
    )


# ----------------------------------------------------------------------
# switch reports
# ----------------------------------------------------------------------
def _encode_port_entry(entry: PortTelemetryEntry) -> dict:
    return {
        "port": entry.port,
        "qdepth_pkts": entry.qdepth_pkts,
        "qdepth_bytes": entry.qdepth_bytes,
        "paused": entry.paused,
        "flow_pkts": [[encode_flow_key(f), c]
                      for f, c in entry.flow_pkts.items()],
        "inqueue": [[encode_flow_key(f), c]
                    for f, c in entry.inqueue_flow_pkts.items()],
        "wait_weights": [[encode_flow_key(fi), encode_flow_key(fj), w]
                         for (fi, fj), w in entry.wait_weights.items()],
    }


def _decode_port_entry(data: dict) -> PortTelemetryEntry:
    return PortTelemetryEntry(
        port=int(data["port"]),
        qdepth_pkts=int(data["qdepth_pkts"]),
        qdepth_bytes=int(data["qdepth_bytes"]),
        paused=bool(data["paused"]),
        flow_pkts={decode_flow_key(f): float(c)
                   for f, c in data["flow_pkts"]},
        inqueue_flow_pkts={decode_flow_key(f): int(c)
                           for f, c in data["inqueue"]},
        wait_weights={(decode_flow_key(fi), decode_flow_key(fj)): float(w)
                      for fi, fj, w in data["wait_weights"]},
    )


def encode_switch_report(report: SwitchReport) -> dict:
    return {
        "switch": report.switch_id,
        "time": report.time,
        "poll_id": report.poll_id,
        "ports": [_encode_port_entry(e) for e in report.ports],
        "meters": [[inp, out, v]
                   for (inp, out), v in report.port_meters.items()],
        "pause_received": [encode_pause_event(e)
                           for e in report.pause_received],
        "pause_sent": [encode_pause_event(e) for e in report.pause_sent],
        "ttl_drops": [[encode_flow_key(f), c]
                      for f, c in report.ttl_drops.items()],
        "size_bytes": report.size_bytes,
    }


def decode_switch_report(data: dict) -> SwitchReport:
    return SwitchReport(
        switch_id=data["switch"],
        time=float(data["time"]),
        poll_id=data.get("poll_id"),
        ports=[_decode_port_entry(e) for e in data["ports"]],
        port_meters={(int(inp), int(out)): float(v)
                     for inp, out, v in data["meters"]},
        pause_received=[decode_pause_event(e)
                        for e in data["pause_received"]],
        pause_sent=[decode_pause_event(e) for e in data["pause_sent"]],
        ttl_drops={decode_flow_key(f): int(c)
                   for f, c in data["ttl_drops"]},
        size_bytes=int(data["size_bytes"]),
    )


# ----------------------------------------------------------------------
# schedules
# ----------------------------------------------------------------------
def encode_schedule(schedule: StepSchedule) -> dict:
    return {
        "algorithm": schedule.algorithm,
        "op": schedule.op.value,
        "nodes": schedule.nodes,
        "steps": {
            node: [{
                "peer": s.peer,
                "chunk": s.chunk_id,
                "bytes": s.size_bytes,
                "depends_on": list(s.depends_on) if s.depends_on else None,
            } for s in steps]
            for node, steps in schedule.steps.items()
        },
    }


def decode_schedule(data: dict) -> StepSchedule:
    schedule = StepSchedule(
        algorithm=data["algorithm"],
        op=CollectiveOp(data["op"]),
        nodes=list(data["nodes"]),
    )
    for node, steps in data["steps"].items():
        schedule.steps[node] = [
            SendStep(
                node=node,
                step_index=i,
                peer=s["peer"],
                chunk_id=int(s["chunk"]),
                size_bytes=int(s["bytes"]),
                depends_on=tuple(s["depends_on"]) if s["depends_on"]
                else None,
            ) for i, s in enumerate(steps)]
    return schedule
