"""Supervised execution for the long-running diagnosis service.

The paper's monitor only earns its "always-on, negligible overhead"
claim if the host-side service survives its own failures.  This module
is the process-supervision half of that story:

* :class:`Supervisor` runs a target callable and restarts it on
  exception with **exponential backoff** (seeded jitter, capped), so a
  transiently failing pipeline recovers without hammering the host;
* :class:`CrashLoopBreaker` is the circuit breaker: more than
  ``max_restarts`` crashes inside a sliding ``window_s`` trips it, and
  the supervisor re-raises :class:`CrashLoopError` instead of spinning
  forever on a deterministic bug;
* :class:`GracefulShutdown` owns SIGTERM/SIGINT: the first signal
  requests a drain (finish in-flight work, flush a final checkpoint,
  exit 0); a second signal force-exits nonzero immediately.

Everything wall-clock is injectable (``clock`` / ``sleep``), and the
jitter RNG is seeded, so the backoff schedule is exactly reproducible
in tests.
"""

from __future__ import annotations

import logging
import os
import random
import signal
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, TypeVar

from repro.core.retry import RetryPolicy
from repro.core.units import Seconds

log = logging.getLogger(__name__)

T = TypeVar("T")

#: conventional exit code for a forced (double-signal) shutdown
FORCE_EXIT_CODE = 130


@dataclass
class RestartPolicy:
    """Backoff and crash-loop budget of a :class:`Supervisor`."""

    #: crashes allowed inside ``window_s`` before the breaker trips
    max_restarts: int = 5
    #: sliding window the restart budget applies to
    window_s: Seconds = 60.0
    #: first backoff delay; doubles per consecutive crash
    backoff_base_s: Seconds = 0.5
    #: multiplier between consecutive delays
    backoff_factor: float = 2.0
    #: backoff never exceeds this, jitter included
    backoff_cap_s: Seconds = 30.0
    #: uniform jitter fraction added on top of the raw delay
    jitter_frac: float = 0.1
    #: seed of the jitter RNG (deterministic restart schedule)
    seed: int = 0
    #: newest crash records kept for the post-mortem report; older
    #: ones are evicted so a long-lived supervisor stays bounded
    #: (RPR025) while ``Supervisor.crash_count`` keeps the true total
    max_crash_records: int = 256

    def retry_policy(self) -> RetryPolicy:
        """This restart policy's backoff, as the shared
        :class:`~repro.core.retry.RetryPolicy` (same formula, same
        seed semantics — the supervisor delegates its delays here)."""
        return RetryPolicy(
            max_attempts=self.max_restarts,
            base_delay_s=self.backoff_base_s,
            factor=self.backoff_factor,
            max_delay_s=self.backoff_cap_s,
            jitter_frac=self.jitter_frac,
            seed=self.seed)


class CrashLoopError(RuntimeError):
    """The supervised target keeps dying faster than the budget."""

    def __init__(self, crashes: int,
                 window_s: Seconds) -> None:
        super().__init__(
            f"crash loop: {crashes} crashes within {window_s:g}s "
            f"budget; giving up instead of spinning")
        self.crashes = crashes


@dataclass
class CrashRecord:
    """One observed crash, for the supervisor's post-mortem report."""

    attempt: int
    error: str
    at: float
    backoff_s: Seconds


class CrashLoopBreaker:
    """Sliding-window crash counter."""

    def __init__(self, max_restarts: int, window_s: Seconds,
                 clock: Callable[[], float]) -> None:
        self.max_restarts = max_restarts
        self.window_s = window_s
        self.clock = clock
        self._crash_times: list[float] = []

    def record(self) -> bool:
        """Record one crash; True when the budget is exhausted."""
        now = self.clock()
        self._crash_times.append(now)
        horizon = now - self.window_s
        self._crash_times = [t for t in self._crash_times
                             if t >= horizon]
        return len(self._crash_times) > self.max_restarts

    @property
    def recent_crashes(self) -> int:
        return len(self._crash_times)


class Supervisor:
    """Restart-on-failure wrapper around the serve loop.

    ``target`` is called with the attempt number (0 = first run); it
    is expected to resume from the latest checkpoint itself (see
    :func:`repro.live.checkpoint.resume_or_create`).  A normal return
    ends supervision; an exception triggers backoff + restart until
    the crash-loop breaker trips.  ``should_stop`` (the graceful
    shutdown flag) is honored between attempts: a requested shutdown
    is never restarted.
    """

    def __init__(self, target: Callable[[int], T],
                 policy: Optional[RestartPolicy] = None,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep,
                 should_stop: Optional[Callable[[], bool]] = None,
                 on_crash: Optional[Callable[[CrashRecord], None]]
                 = None) -> None:
        self.target = target
        self.policy = policy or RestartPolicy()
        self.clock = clock
        self.sleep = sleep
        self.should_stop = should_stop
        self.on_crash = on_crash
        self.crashes: list[CrashRecord] = []
        #: total crashes ever seen; survives crash-record eviction
        self.crash_count = 0
        self._rng = random.Random(self.policy.seed)
        self.breaker = CrashLoopBreaker(
            self.policy.max_restarts, self.policy.window_s, clock)

    # ------------------------------------------------------------------
    def backoff_delay(self, attempt: int) -> float:
        """Deterministic (seeded) capped exponential backoff with
        jitter for the given consecutive-crash count (0-based).

        Delegates to :meth:`RestartPolicy.retry_policy`, passing the
        supervisor's own RNG — the seeded restart schedule is
        bit-identical to what this method always produced."""
        return self.policy.retry_policy().delay_s(attempt, self._rng)

    def run(self) -> Optional[T]:
        attempt = 0
        while True:
            try:
                return self.target(attempt)
            except Exception as error:  # noqa: BLE001 - supervision
                tripped = self.breaker.record()
                delay = 0.0 if tripped else self.backoff_delay(
                    self.crash_count)
                record = CrashRecord(
                    attempt=attempt,
                    error=f"{type(error).__name__}: {error}",
                    at=self.clock(), backoff_s=delay)
                self.crash_count += 1
                self.crashes.append(record)
                if len(self.crashes) > self.policy.max_crash_records:
                    del self.crashes[
                        :-self.policy.max_crash_records]
                if self.on_crash is not None:
                    self.on_crash(record)
                if tripped:
                    raise CrashLoopError(
                        self.breaker.recent_crashes,
                        self.policy.window_s) from error
                log.warning("supervised target crashed (%s); "
                            "restarting in %.2fs", record.error, delay)
                if delay > 0:
                    self.sleep(delay)
                if self.should_stop is not None and self.should_stop():
                    return None
                attempt += 1


@dataclass
class GracefulShutdown:
    """Two-stage SIGTERM/SIGINT handling for ``repro serve``.

    First signal: set ``requested`` so the serve loop drains, flushes
    a final checkpoint and exits 0.  Second signal (impatient
    operator): ``os._exit`` with a nonzero code immediately —
    the atomic checkpoint protocol makes that safe at any instant.

    ``drain_grace_s`` keeps the consumer alive that long after the
    first signal before the drain starts, letting in-flight producers
    settle (and giving tests a deterministic force-exit window).
    """

    drain_grace_s: Seconds = 0.0
    force_exit_code: int = FORCE_EXIT_CODE
    requested: bool = field(default=False, init=False)
    signals_seen: int = field(default=0, init=False)

    def install(self) -> "GracefulShutdown":
        signal.signal(signal.SIGTERM, self._handle)
        signal.signal(signal.SIGINT, self._handle)
        return self

    def _handle(self, signum, _frame) -> None:
        self.signals_seen += 1
        if self.requested:
            # second signal: force exit, skipping interpreter
            # shutdown — the last atomic checkpoint already persisted
            os._exit(self.force_exit_code)
        self.requested = True
        # operator-facing notice; logging's lock is reentrant-safe
        # here because the handler runs on the main thread only
        log.warning("signal %d: draining (signal again to force-exit "  # repro: noqa RPR023
                    "with code %d)", signum, self.force_exit_code)

    def wait_out_grace(self,
                       sleep: Callable[[float], None] = time.sleep,
                       slice_s: Seconds = 0.05) -> None:
        """Sleep through ``drain_grace_s`` in small slices (so a
        second signal can still interrupt)."""
        remaining = self.drain_grace_s
        while remaining > 1e-9:
            step = min(slice_s, remaining)
            sleep(step)
            remaining -= step
