"""Deterministic chaos harness for the crash-safe live service.

``repro chaos`` is the executable proof of the recovery contract:

    *resume from checkpoint + remaining stream produces a final
    DiagnosisSnapshot bit-equal to an uninterrupted run.*

A :class:`ChaosPlan` is a pure function of its seed: it perturbs the
replayed stream (duplicated deliveries, bounded reordering), kills the
replay at chosen event indices via :class:`SimulatedCrash`, optionally
corrupts or truncates the newest checkpoint before each resume, and
can probe mid-record trace truncation.  :func:`run_chaos` then runs
the same perturbed stream twice — once uninterrupted, once through
every kill/resume cycle — and compares the two final snapshots
byte-for-byte (canonical JSON).  Same seed, same verdict, every time.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from repro.live.checkpoint import (
    CheckpointManager,
    CheckpointPolicy,
    TraceReplayer,
    resume_or_create,
)
from repro.live.pipeline import PipelineConfig
from repro.traces.stream import (
    TraceEvent,
    merged_events,
    read_header,
    scan_resume_offset,
    stream_events,
)


class SimulatedCrash(RuntimeError):
    """Injected process death at a planned kill point."""

    def __init__(self, published: int) -> None:
        super().__init__(f"simulated crash after event {published}")
        self.published = published


@dataclass(frozen=True)
class ChaosPlan:
    """One reproducible chaos experiment.

    All perturbations derive from ``seed`` alone; ``kill_points`` are
    1-based cumulative published-event counts at which the replay dies
    (each fires exactly once, in ascending order).
    """

    seed: int = 0
    kill_points: tuple[int, ...] = ()
    #: flip one byte of the newest checkpoint before each resume
    corrupt_latest: bool = False
    #: truncate (instead of bit-flip) the newest checkpoint
    truncate_checkpoint: bool = False
    #: deliver every k-th data event twice (0 disables)
    duplicate_every: int = 0
    #: shuffle events inside a sliding window this wide (<=1 disables)
    reorder_window: int = 0
    #: also probe mid-record trace truncation detection/resume
    probe_truncation: bool = False


@dataclass
class ChaosReport:
    """Outcome of one :func:`run_chaos` experiment."""

    plan: ChaosPlan
    events_total: int = 0
    kills_survived: int = 0
    resumes: int = 0
    resumes_from_scratch: int = 0
    checkpoints_written: int = 0
    checkpoints_corrupted: int = 0
    corrupt_skipped: int = 0
    fallbacks: int = 0
    baseline_digest: str = ""
    recovered_digest: str = ""
    equal: bool = False
    truncation: Optional[dict] = None
    kill_log: list[dict] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        ok = self.equal
        if self.truncation is not None:
            ok = ok and self.truncation.get("detected", False) \
                and self.truncation.get("resumed_ok", False)
        return ok

    def to_dict(self) -> dict:
        return {
            "seed": self.plan.seed,
            "kill_points": list(self.plan.kill_points),
            "corrupt_latest": self.plan.corrupt_latest,
            "truncate_checkpoint": self.plan.truncate_checkpoint,
            "duplicate_every": self.plan.duplicate_every,
            "reorder_window": self.plan.reorder_window,
            "events_total": self.events_total,
            "kills_survived": self.kills_survived,
            "resumes": self.resumes,
            "resumes_from_scratch": self.resumes_from_scratch,
            "checkpoints_written": self.checkpoints_written,
            "checkpoints_corrupted": self.checkpoints_corrupted,
            "corrupt_skipped": self.corrupt_skipped,
            "fallbacks": self.fallbacks,
            "baseline_digest": self.baseline_digest,
            "recovered_digest": self.recovered_digest,
            "equal": self.equal,
            "truncation": self.truncation,
            "kill_log": list(self.kill_log),
            "passed": self.passed,
        }

    def summary_line(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        extras = []
        if self.fallbacks:
            extras.append(f"fallbacks={self.fallbacks}")
        if self.resumes_from_scratch:
            extras.append(f"cold-starts={self.resumes_from_scratch}")
        tail = f" {' '.join(extras)}" if extras else ""
        return (f"[{verdict}] seed={self.plan.seed} "
                f"events={self.events_total} "
                f"kills={self.kills_survived}/"
                f"{len(self.plan.kill_points)} "
                f"checkpoints={self.checkpoints_written} "
                f"bit-equal={str(self.equal).lower()}{tail}")


# ----------------------------------------------------------------------
# deterministic stream perturbation
# ----------------------------------------------------------------------
def perturbed_events(path: Union[str, Path], plan: ChaosPlan,
                     on_error=None) -> Iterator[TraceEvent]:
    """The merged data stream with the plan's seeded perturbations.

    Duplication and reordering are a pure function of ``plan.seed``
    and the event sequence, so re-creating this generator replays the
    *identical* perturbed stream — that is what lets a resumed run
    skip ``cursor.published`` events and land exactly where the dead
    process stopped.
    """
    events: Iterable[TraceEvent] = merged_events(path, on_error)
    if plan.duplicate_every > 1:
        events = _duplicated(events, plan.duplicate_every)
    if plan.reorder_window > 1:
        events = _reordered(events, plan.reorder_window,
                            random.Random(plan.seed))
    return iter(events)


def _duplicated(events: Iterable[TraceEvent],
                every: int) -> Iterator[TraceEvent]:
    for count, event in enumerate(events, start=1):
        yield event
        if count % every == 0:
            yield event


def _reordered(events: Iterable[TraceEvent], window: int,
               rng: random.Random) -> Iterator[TraceEvent]:
    buffer: list[TraceEvent] = []
    for event in events:
        buffer.append(event)
        if len(buffer) >= window:
            yield buffer.pop(rng.randrange(len(buffer)))
    while buffer:
        yield buffer.pop(rng.randrange(len(buffer)))


# ----------------------------------------------------------------------
# checkpoint corruption
# ----------------------------------------------------------------------
def corrupt_newest_checkpoint(manager: CheckpointManager,
                              rng: random.Random,
                              truncate: bool = False) -> Optional[Path]:
    """Deterministically damage the newest snapshot file.

    Either chops the file mid-document (a crash during a non-atomic
    write, were there one) or flips one byte (bit rot).  Returns the
    damaged path, or None when no snapshot exists yet.
    """
    paths = manager.snapshot_paths()
    if not paths:
        return None
    path = paths[-1]
    data = bytearray(path.read_bytes())
    if not data:
        return path
    if truncate:
        path.write_bytes(bytes(data[:max(1, len(data) // 2)]))
    else:
        position = rng.randrange(len(data))
        data[position] ^= 0xFF
        path.write_bytes(bytes(data))
    return path


# ----------------------------------------------------------------------
# trace-truncation probe
# ----------------------------------------------------------------------
def probe_trace_truncation(trace_path: Union[str, Path],
                           workdir: Union[str, Path]) -> dict:
    """Cut the trace mid-way through its final record and verify the
    reader (a) detects the partial record, (b) reports the correct
    resume offset, and (c) resumes cleanly once the writer completes
    the file."""
    trace_path = Path(trace_path)
    data = trace_path.read_bytes()
    body = data.rstrip(b"\n")
    last_start = body.rfind(b"\n") + 1
    cut = last_start + max(1, (len(body) - last_start) // 2)
    copy = Path(workdir) / "truncated-trace.jsonl"
    copy.write_bytes(data[:cut])

    errors: list[tuple[int, str, str]] = []

    def on_error(line_no: int, reason: str, snippet: str) -> None:
        errors.append((line_no, reason, snippet))

    partial = sum(1 for _ in stream_events(copy, on_error))
    detected = any("TraceTruncated" in reason
                   for _line, reason, _snip in errors)
    resume_offset = scan_resume_offset(copy)
    # the writer finishes the file; resume from the intact prefix
    copy.write_bytes(data)
    line_no = data[:resume_offset].count(b"\n") + 1
    resumed = sum(1 for _ in stream_events(
        copy, start_offset=resume_offset, start_line=line_no))
    total = sum(1 for _ in stream_events(copy))
    return {
        "detected": detected,
        "cut_at": cut,
        "resume_offset": resume_offset,
        "offset_correct": resume_offset == last_start,
        "events_before_cut": partial,
        "events_after_resume": resumed,
        "resumed_ok": resume_offset == last_start
        and partial + resumed == total,
    }


# ----------------------------------------------------------------------
# the experiment
# ----------------------------------------------------------------------
def _digest(snapshot_json: str) -> str:
    return hashlib.sha256(snapshot_json.encode("utf-8")).hexdigest()


def _final_json(snapshot) -> str:
    return json.dumps(snapshot.to_dict(), sort_keys=True)


def default_config() -> PipelineConfig:
    """Chaos default: frequent rolling snapshots so kills land between
    emissions and checkpoints carry non-trivial snapshot state."""
    return PipelineConfig(snapshot_every=32)


def run_chaos(trace_path: Union[str, Path],
              workdir: Union[str, Path],
              plan: ChaosPlan,
              config: Optional[PipelineConfig] = None,
              policy: Optional[CheckpointPolicy] = None) -> ChaosReport:
    """Execute one seeded chaos experiment; see the module docstring.

    ``workdir`` receives the checkpoint directory (``checkpoints/``)
    and any probe fixtures; reusing a dirty workdir is an error the
    caller owns (the CLI always hands a fresh one).
    """
    trace_path = Path(trace_path)
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    config = config or default_config()
    policy = policy or CheckpointPolicy(interval_events=64,
                                        max_unflushed_events=256)
    report = ChaosReport(plan=plan)
    header = read_header(trace_path)

    # --- baseline: the same perturbed stream, never interrupted ------
    from repro.live.pipeline import LivePipeline

    baseline = LivePipeline.from_header(header, config=config)
    baseline_final = TraceReplayer(
        baseline, perturbed_events(trace_path, plan)).run()
    baseline_json = _final_json(baseline_final)
    report.baseline_digest = _digest(baseline_json)
    report.events_total = baseline.counters()["published"]

    # --- interrupted: die at each kill point, resume, repeat ---------
    manager = CheckpointManager(workdir / "checkpoints", policy)
    damage_rng = random.Random(plan.seed ^ 0x5EED)
    pending_kills = sorted(k for k in set(plan.kill_points) if k > 0)
    recovered_json: Optional[str] = None

    for attempt in range(len(pending_kills) + 1):
        pipeline, cursor, resumed = resume_or_create(
            header, manager, config=config)
        if attempt > 0:
            report.resumes += 1
            if not resumed:
                report.resumes_from_scratch += 1
            report.kill_log[-1]["resumed_from"] = cursor.published
        # perturbed streams cannot seek (the reorder RNG is part of
        # the stream state): replay from scratch and skip what the
        # cursor already consumed — deterministic, so the remainder
        # is exactly the dead process's unread tail
        events = itertools.islice(perturbed_events(trace_path, plan),
                                  cursor.published, None)
        kill_at = pending_kills[0] if pending_kills else None

        def on_publish(published: int) -> None:
            if kill_at is not None and published >= kill_at:
                raise SimulatedCrash(published)

        replayer = TraceReplayer(pipeline, events, manager, cursor,
                                 on_publish=on_publish)
        try:
            final = replayer.run()
        except SimulatedCrash as crash:
            pending_kills.pop(0)
            report.kills_survived += 1
            entry = {"kill_at": crash.published,
                     "resumed_from": None,  # set by the next attempt
                     "damaged": None}
            if plan.corrupt_latest or plan.truncate_checkpoint:
                damaged = corrupt_newest_checkpoint(
                    manager, damage_rng,
                    truncate=plan.truncate_checkpoint)
                if damaged is not None:
                    report.checkpoints_corrupted += 1
                    entry["damaged"] = damaged.name
            report.kill_log.append(entry)
            continue
        recovered_json = _final_json(final)
        break

    report.checkpoints_written = manager.written
    report.corrupt_skipped = manager.corrupt_skipped
    report.fallbacks = manager.fallbacks
    if recovered_json is not None:
        report.recovered_digest = _digest(recovered_json)
        report.equal = recovered_json == baseline_json

    if plan.probe_truncation:
        report.truncation = probe_trace_truncation(trace_path, workdir)
    return report


def derive_kill_points(trace_path: Union[str, Path], plan_seed: int,
                       kills: int,
                       duplicate_every: int = 0) -> tuple[int, ...]:
    """Spread ``kills`` seeded kill points over the stream's length
    (used by ``repro chaos --kills N`` when no explicit points are
    given)."""
    total = sum(1 for _ in merged_events(trace_path))
    if duplicate_every > 1:
        total += total // duplicate_every
    if total <= 1 or kills <= 0:
        return ()
    rng = random.Random(plan_seed)
    population = range(1, total)
    count = min(kills, len(population))
    return tuple(sorted(rng.sample(population, count)))
