"""Self-observability for the live pipeline.

A diagnosis service that cannot report on *itself* is just another
opaque component to diagnose.  This module is a dependency-free
miniature of the Prometheus client model: :class:`Counter` (monotonic),
:class:`Gauge` (point-in-time), :class:`Histogram` (log-bucketed, with
quantile estimates), all registered in a :class:`MetricsRegistry` that
exports stable JSON (``repro serve --metrics``) and renders as the
``repro metrics`` CLI view.
"""

from __future__ import annotations

import bisect
import json
import math
from typing import Optional, Union

Number = Union[int, float]

Labels = Optional[dict[str, str]]


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double-quote and newline are the three characters the
    format reserves inside a quoted label value; everything else passes
    through verbatim (the format is UTF-8).  Backslash must be escaped
    first so the escapes it introduces are not re-escaped.
    """
    return value.replace("\\", "\\\\") \
                .replace('"', '\\"') \
                .replace("\n", "\\n")


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` line per the text exposition format (only
    backslash and newline are special there)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def full_name(name: str, labels: Labels) -> str:
    """Prometheus-style exposition name: ``name{key="value",...}``.

    Label values are escaped (backslash, quote, newline) so the output
    is valid text exposition even for hostile tenant names.
    """
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{escape_label_value(str(labels[key]))}"'
        for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count."""

    def __init__(self, name: str, help: str = "",
                 labels: Labels = None) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels) if labels else None
        self.value: Number = 0

    @property
    def exposition_name(self) -> str:
        return full_name(self.name, self.labels)

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def to_dict(self) -> dict:
        data = {"type": "counter", "help": self.help,
                "value": self.value}
        if self.labels:
            data["labels"] = dict(self.labels)
        return data


class Gauge:
    """A value that goes up and down (queue depth, rates, ratios)."""

    def __init__(self, name: str, help: str = "",
                 labels: Labels = None) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels) if labels else None
        self.value: Number = 0

    @property
    def exposition_name(self) -> str:
        return full_name(self.name, self.labels)

    def set(self, value: Number) -> None:
        self.value = value

    def to_dict(self) -> dict:
        data = {"type": "gauge", "help": self.help,
                "value": self.value}
        if self.labels:
            data["labels"] = dict(self.labels)
        return data


def default_buckets(start: float = 1e-6, factor: float = 2.0,
                    count: int = 24) -> list[float]:
    """Log-spaced bucket upper bounds; 1 µs .. ~8 s with defaults."""
    return [start * factor ** i for i in range(count)]


class Histogram:
    """Fixed log-bucket histogram with quantile estimation.

    Quantiles are estimated by linear interpolation inside the bucket
    holding the target rank — coarse, but bounded-memory and good
    enough for "p99 ingest-to-snapshot latency" dashboards.
    """

    def __init__(self, name: str, help: str = "",
                 buckets: Optional[list[float]] = None,
                 labels: Labels = None) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels) if labels else None
        self.bounds = sorted(buckets or default_buckets())
        #: counts[i] observations <= bounds[i]; the last slot overflows
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    @property
    def exposition_name(self) -> str:
        return full_name(self.name, self.labels)

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def merge_from(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        Used by fleet aggregation: per-shard/per-tenant histograms with
        identical bucket bounds sum into one fleet-level distribution.
        Differing bounds are a caller bug and raise.
        """
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge {other.name!r} into {self.name!r}: "
                f"bucket bounds differ")
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total += other.total
        self.sum += other.sum
        if other.total:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    # ------------------------------------------------------------------
    def percentile(self, p: float) -> float:
        """Estimated value at percentile ``p``.

        Explicit edge behavior (each case is tested directly):

        * ``p`` outside [0, 100] raises :class:`ValueError`;
        * an empty histogram returns 0.0 for any valid ``p``;
        * ``p == 0`` returns the exact observed minimum and
          ``p == 100`` the exact observed maximum (no interpolation);
        * a histogram whose observations all overflowed the last bound
          interpolates inside ``[max(last_bound, min), max]`` instead
          of falling through to an unrelated bucket.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(
                f"percentile {p!r} outside [0, 100]")
        if self.total == 0:
            return 0.0
        if p == 0:
            return self.min
        if p == 100:
            return self.max
        rank = p / 100.0 * self.total
        cumulative = 0
        for i, count in enumerate(self.counts):
            if count == 0:
                continue
            if i == 0:
                lower = min(self.min, self.bounds[0])
            elif i < len(self.bounds):
                lower = self.bounds[i - 1]
            else:
                # overflow bucket: every sample here is > bounds[-1],
                # and >= self.min when all samples overflowed
                lower = max(self.bounds[-1], min(self.min, self.max))
            upper = self.bounds[i] if i < len(self.bounds) else self.max
            if cumulative + count >= rank:
                fraction = (rank - cumulative) / count
                return min(max(lower + fraction * (upper - lower),
                               self.min), self.max)
            cumulative += count
        return self.max

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Full JSON-safe state — unlike :meth:`to_dict` (a rendered
        summary), this round-trips exactly through
        :meth:`load_state`, so a worker process can ship its latency
        distribution home inside a ShardReport."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "min": None if math.isinf(self.min) else self.min,
            "max": None if math.isinf(self.max) else self.max,
        }

    def load_state(self, state: dict) -> "Histogram":
        """Restore from :meth:`state_dict` output (symmetric keys)."""
        self.bounds = [float(b) for b in state["bounds"]]
        self.counts = [int(c) for c in state["counts"]]
        self.total = int(state["total"])
        self.sum = float(state["sum"])
        self.min = math.inf if state["min"] is None \
            else float(state["min"])
        self.max = -math.inf if state["max"] is None \
            else float(state["max"])
        return self

    def to_dict(self) -> dict:
        data = {
            "type": "histogram", "help": self.help,
            "count": self.total, "sum": self.sum,
            "min": self.min if self.total else 0.0,
            "max": self.max if self.total else 0.0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "buckets": [[bound, count] for bound, count
                        in zip(self.bounds, self.counts)
                        if count > 0],
            "overflow": self.counts[-1],
        }
        if self.labels:
            data["labels"] = dict(self.labels)
        return data


class MetricsRegistry:
    """Named metrics with one-call JSON export."""

    def __init__(self) -> None:
        self._metrics: dict[str, Union[Counter, Gauge, Histogram]] = {}

    def attach(self, metric):
        """Register an externally-owned metric instance."""
        key = getattr(metric, "exposition_name", metric.name)
        if key in self._metrics:
            raise ValueError(f"duplicate metric {key!r}")
        self._metrics[key] = metric
        return metric

    def counter(self, name: str, help: str = "",
                labels: Labels = None) -> Counter:
        return self.attach(Counter(name, help, labels))

    def gauge(self, name: str, help: str = "",
              labels: Labels = None) -> Gauge:
        return self.attach(Gauge(name, help, labels))

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[list[float]] = None,
                  labels: Labels = None) -> Histogram:
        return self.attach(Histogram(name, help, buckets, labels))

    # ------------------------------------------------------------------
    def __getitem__(self, name: str):
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def metrics(self) -> list[Union[Counter, Gauge, Histogram]]:
        """All registered metric objects, in exposition-name order."""
        return [self._metrics[name] for name in self.names()]

    def to_dict(self) -> dict:
        return {name: self._metrics[name].to_dict()
                for name in self.names()}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def render_metrics_text(data: dict) -> str:
    """The ``repro metrics`` view over an exported metrics dict."""
    lines: list[str] = []
    width = max((len(name) for name in data), default=0)
    for name in sorted(data):
        entry = data[name]
        kind = entry.get("type", "?")
        if kind == "histogram":
            value = (f"count={entry['count']} "
                     f"mean={_fmt(entry['mean'])} "
                     f"p50={_fmt(entry['p50'])} "
                     f"p99={_fmt(entry['p99'])} "
                     f"max={_fmt(entry['max'])}")
        else:
            value = _fmt(entry.get("value", 0))
        lines.append(f"{name:<{width}}  {kind:<9} {value}")
        if entry.get("help"):
            lines.append(f"{'':<{width}}    {entry['help']}")
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
