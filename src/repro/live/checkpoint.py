"""Crash-safe checkpoint/resume for the live diagnosis service.

A killed ``repro serve`` used to lose all incremental waiting-graph
state and re-read the stream from byte 0.  This module makes the
pipeline durable:

* :class:`CheckpointManager` writes **versioned, atomic snapshots** of
  the full :class:`~repro.live.pipeline.LivePipeline` state (graph
  aggregates, watermark heap, bus queue, quarantine/degradation
  counters) keyed to a durable trace-stream cursor.  Writes go through
  ``tmp + fsync + rename`` so a crash mid-write never corrupts the
  latest good snapshot; loads verify a SHA-256 checksum and fall back
  through older snapshots when the newest is truncated or bit-flipped.
* :class:`CheckpointPolicy` decides *when*: every ``interval_events``
  published events (rate-limited by ``min_interval_s`` of wall clock),
  forced at ``max_unflushed_events``, retaining the last ``retain``
  snapshots for fallback.
* :class:`TraceReplayer` is the serve loop shared by ``repro serve``
  and ``repro chaos``: it feeds merged trace events into a pipeline,
  maintains the :class:`ReplayCursor`, takes due checkpoints, and on
  finish (end of stream or graceful stop) flushes a final checkpoint
  before emitting the last snapshot.

Recovery contract (tested by ``repro chaos``): *resume from checkpoint
+ remaining stream produces a final DiagnosisSnapshot bit-equal to an
uninterrupted run* — the PR-1 incremental-vs-batch equivalence, now
extended across process death.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Union

from repro.core.units import Seconds
from repro.live.metrics import Histogram, MetricsRegistry
from repro.live.pipeline import DiagnosisSnapshot, LivePipeline
from repro.traces.stream import TraceEvent

#: on-disk snapshot schema version; bump on incompatible state changes
CHECKPOINT_VERSION = 1

#: canonical JSON encoding the checksum is computed over
_CANONICAL = {"sort_keys": True, "separators": (",", ":")}


class CheckpointCorrupt(RuntimeError):
    """A snapshot file failed validation (truncated, bit-flipped, or
    written by an incompatible version)."""


@dataclass
class CheckpointPolicy:
    """When to checkpoint and how many snapshots to keep.

    ``interval_events`` is the normal cadence in published events;
    ``min_interval_s`` rate-limits it under event bursts (0 disables
    the wall-clock gate, keeping tests deterministic);
    ``max_unflushed_events`` overrides the rate limit — the upper
    bound on events a crash may force the service to re-read;
    ``retain`` keeps the last K snapshots so a corrupt latest can fall
    back to an older good one.
    """

    interval_events: int = 512
    min_interval_s: Seconds = 0.0
    max_unflushed_events: int = 4096
    retain: int = 3


@dataclass
class ReplayCursor:
    """Durable position in the trace stream.

    The portable contract is **(format-independent) per-kind record
    counts**: ``counts`` maps each record kind to how many records of
    that kind the deterministic merged stream has delivered.  Because
    the merge order is a pure function of the trace contents, a count
    cursor resumes against *either* on-disk format — a checkpoint
    taken while replaying JSONL resumes against the columnar
    conversion of the same capture, and vice versa (see
    :func:`repro.traces.trace_events`).

    ``positions`` is the JSONL fast path: each kind's
    ``[end_offset, next_line]`` of the last event consumed, letting
    :func:`repro.traces.stream.merged_events` seek instead of
    re-scanning.  Offsets are only recorded when events carry them
    (JSONL sources), and only apply to the same JSONL file.

    ``published`` counts all events delivered (both kinds), the
    checkpoint filename key.
    """

    published: int = 0
    positions: dict[str, list[int]] = field(default_factory=dict)
    #: format-portable per-kind record counts
    counts: dict[str, int] = field(default_factory=dict)

    def advance(self, event: TraceEvent) -> None:
        self.published += 1
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1
        if event.end_offset >= 0:
            self.positions[event.kind] = [event.end_offset,
                                          event.line_no + 1]

    def resume_map(self) -> Optional[dict[str, tuple[int, int]]]:
        """The ``resume=`` argument for ``merged_events``, or None
        when no event carried file offsets (synthetic or columnar
        streams — resume those via :meth:`resume_counts`)."""
        if not self.positions:
            return None
        return {kind: (int(offset), int(line))
                for kind, (offset, line) in self.positions.items()}

    def resume_counts(self) -> dict[str, int]:
        """Per-kind records already consumed — the format-portable
        resume coordinate for :func:`repro.traces.trace_events`."""
        return {kind: int(count)
                for kind, count in self.counts.items()}

    def to_dict(self) -> dict:
        return {"published": self.published,
                "positions": {k: list(v)
                              for k, v in sorted(self.positions.items())},
                "counts": {k: int(v)
                           for k, v in sorted(self.counts.items())}}

    @classmethod
    def from_dict(cls, data: dict) -> "ReplayCursor":
        return cls(published=int(data.get("published", 0)),
                   positions={str(k): [int(v[0]), int(v[1])]
                              for k, v in
                              (data.get("positions") or {}).items()},
                   counts={str(k): int(v) for k, v in
                           (data.get("counts") or {}).items()})


def _checksum(state: dict) -> str:
    payload = json.dumps(state, **_CANONICAL).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


class CheckpointManager:
    """Atomic, versioned, checksummed snapshots with retention.

    Snapshots are ``ckpt-<published>.json`` files in ``directory``;
    the newest valid one wins.  All writes are crash-safe: the payload
    lands in a temporary file that is fsynced and then atomically
    renamed over the final name, and the directory entry is fsynced so
    the rename itself survives power loss.
    """

    PREFIX = "ckpt-"
    SUFFIX = ".json"

    def __init__(self, directory: Union[str, Path],
                 policy: Optional[CheckpointPolicy] = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.policy = policy or CheckpointPolicy()
        # observability (registered into the serve metrics export)
        self.written = 0
        self.loaded = 0
        self.corrupt_skipped = 0
        self.fallbacks = 0
        self.pruned = 0
        self.last_bytes = 0
        self.write_seconds = Histogram(
            "live_checkpoint_write_seconds",
            "wall time to serialize + fsync one checkpoint")

    # ------------------------------------------------------------------
    def path_for(self, published: int) -> Path:
        return self.directory / \
            f"{self.PREFIX}{published:010d}{self.SUFFIX}"

    def snapshot_paths(self) -> list[Path]:
        """All snapshot files, oldest first."""
        return sorted(p for p in self.directory.glob(
            f"{self.PREFIX}*{self.SUFFIX}"))

    # ------------------------------------------------------------------
    def save(self, state: dict) -> Path:
        """Atomically persist one pipeline state dict.

        Failpoint ``checkpoint.save`` (see
        :mod:`repro.core.failpoints`) can inject an ``OSError`` or a
        delay here — the error propagates exactly like a real disk
        fault, crashing the attempt so supervision restarts it."""
        from repro.core import failpoints

        failpoints.fire("checkpoint.save")
        cursor = ReplayCursor.from_dict(state.get("cursor") or {})
        path = self.path_for(cursor.published)
        start = time.perf_counter()
        # serialize the state exactly once: the canonical payload is
        # both the checksum input and the bytes embedded on disk
        payload = json.dumps(state, **_CANONICAL)
        checksum = hashlib.sha256(
            payload.encode("utf-8")).hexdigest()
        document = (f'{{"checksum":"{checksum}",'
                    f'"state":{payload},'
                    f'"version":{CHECKPOINT_VERSION}}}\n')
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(document)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self._fsync_directory()
        self.write_seconds.observe(
            max(0.0, time.perf_counter() - start))
        self.written += 1
        self.last_bytes = path.stat().st_size
        self._prune_retention()
        return path

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-specific
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover  # repro: noqa RPR030 - dir fsync is best-effort on platforms without it
            pass
        finally:
            os.close(fd)

    def _prune_retention(self) -> None:
        keep = max(1, self.policy.retain)
        paths = self.snapshot_paths()
        for stale in paths[:-keep]:
            stale.unlink(missing_ok=True)
            self.pruned += 1

    # ------------------------------------------------------------------
    def load(self, path: Path) -> dict:
        """Validate and return one snapshot's state dict."""
        try:
            with path.open("r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError) as error:
            raise CheckpointCorrupt(
                f"{path.name}: unreadable ({error})") from error
        if not isinstance(document, dict):
            raise CheckpointCorrupt(f"{path.name}: not an object")
        if document.get("version") != CHECKPOINT_VERSION:
            raise CheckpointCorrupt(
                f"{path.name}: version {document.get('version')!r} "
                f"!= {CHECKPOINT_VERSION}")
        state = document.get("state")
        if not isinstance(state, dict):
            raise CheckpointCorrupt(f"{path.name}: missing state")
        if _checksum(state) != document.get("checksum"):
            raise CheckpointCorrupt(f"{path.name}: checksum mismatch")
        return state

    def load_latest(self) -> Optional[dict]:
        """The newest valid snapshot's state, falling back through
        older snapshots past corrupt/partial ones; None if no valid
        snapshot exists."""
        paths = self.snapshot_paths()
        for rank, path in enumerate(reversed(paths)):
            try:
                state = self.load(path)
            except CheckpointCorrupt:
                self.corrupt_skipped += 1
                continue
            self.loaded += 1
            if rank > 0:
                self.fallbacks += 1
            return state
        return None

    # ------------------------------------------------------------------
    def register_metrics(self, registry: MetricsRegistry) -> None:
        registry.counter(
            "live_checkpoints_written_total",
            "atomic snapshots persisted").inc(self.written)
        registry.counter(
            "live_checkpoints_loaded_total",
            "snapshots restored on resume").inc(self.loaded)
        registry.counter(
            "live_checkpoints_corrupt_total",
            "snapshots rejected by checksum/version validation"
        ).inc(self.corrupt_skipped)
        registry.counter(
            "live_checkpoint_fallbacks_total",
            "resumes that skipped past a corrupt newest snapshot"
        ).inc(self.fallbacks)
        registry.gauge(
            "live_checkpoint_bytes",
            "size of the newest snapshot").set(self.last_bytes)
        registry.attach(self.write_seconds)


class TraceReplayer:
    """Feed a (possibly resumed) event stream into a pipeline with
    periodic atomic checkpoints.

    ``events`` must already be positioned at ``cursor`` (use
    :func:`repro.traces.trace_events` with ``cursor=cursor``, which
    picks byte-offset seeking for JSONL and record-count skipping for
    columnar sources; or skip ``cursor.published`` events of a
    transformed stream).  Optional hooks:

    * ``pacing(event)`` — called before each publish (replay-speed
      sleeps in ``repro serve``);
    * ``should_stop()`` — polled each event; True breaks the loop
      (graceful SIGTERM/SIGINT drain);
    * ``on_publish(published)`` — called after each publish with the
      cursor's event count (``repro chaos`` raises its seeded
      :class:`~repro.live.chaos.SimulatedCrash` here);
    * ``admit(published, event)`` — pre-publish gate: returning False
      advances the cursor but skips the pipeline (the fleet's
      per-tenant event budgets shed load here, deterministically —
      admission depends only on the cursor, so a resumed replay sheds
      the same events).
    """

    def __init__(self, pipeline: LivePipeline,
                 events: Iterable[TraceEvent],
                 manager: Optional[CheckpointManager] = None,
                 cursor: Optional[ReplayCursor] = None,
                 pump_at: Optional[int] = None,
                 pacing: Optional[Callable[[TraceEvent], None]] = None,
                 should_stop: Optional[Callable[[], bool]] = None,
                 on_publish: Optional[Callable[[int], None]] = None,
                 admit: Optional[Callable[[int, TraceEvent], bool]]
                 = None) -> None:
        self.pipeline = pipeline
        self.events = events
        self._iter: Optional[Iterator[TraceEvent]] = None
        self.manager = manager
        self.cursor = cursor or ReplayCursor()
        config = pipeline.config
        if pump_at is None:
            pump_at = config.pump_batch if config.queue_capacity <= 0 \
                else min(config.pump_batch, config.queue_capacity)
        self.pump_at = max(1, pump_at)
        self.pacing = pacing
        self.should_stop = should_stop
        self.on_publish = on_publish
        self.admit = admit
        self.stopped = False
        self.exhausted = False
        #: events the ``admit`` gate refused (budget sheds)
        self.shed = 0
        #: wall-clock seconds spent inside :meth:`checkpoint` this run
        #: (state capture + atomic write); checkpointing is fully
        #: synchronous, so this is exactly the time it adds to replay
        self.checkpoint_seconds: float = 0.0
        self._since_checkpoint = 0
        self._last_checkpoint_wall: Optional[float] = None

    # ------------------------------------------------------------------
    def _checkpoint_due(self) -> bool:
        if self.manager is None or self._since_checkpoint == 0:
            return False
        policy = self.manager.policy
        if self._since_checkpoint >= max(1,
                                         policy.max_unflushed_events):
            return True
        if self._since_checkpoint < max(1, policy.interval_events):
            return False
        if policy.min_interval_s > 0 \
                and self._last_checkpoint_wall is not None:
            now = self.pipeline.clock()
            if now - self._last_checkpoint_wall \
                    < policy.min_interval_s:
                return False
        return True

    def checkpoint(self) -> Optional[Path]:
        """Persist the pipeline state at the current cursor now."""
        if self.manager is None:
            return None
        start = time.perf_counter()
        path = self.manager.save(
            self.pipeline.state_dict(self.cursor.to_dict()))
        self.checkpoint_seconds += time.perf_counter() - start
        self._since_checkpoint = 0
        self._last_checkpoint_wall = self.pipeline.clock()
        return path

    # ------------------------------------------------------------------
    def step(self, max_events: int = 0) -> int:
        """Replay up to ``max_events`` events (all remaining if 0).

        Returns the number of events consumed off the stream (admitted
        or shed).  Zero means the stream is exhausted (``exhausted``)
        or a graceful stop was requested (``stopped``); fleet shards
        interleave many replayers by calling this round-robin.
        """
        if self._iter is None:
            self._iter = iter(self.events)
        pipeline = self.pipeline
        consumed = 0
        while max_events <= 0 or consumed < max_events:
            if self.should_stop is not None and self.should_stop():
                self.stopped = True
                break
            event = next(self._iter, None)
            if event is None:
                self.exhausted = True
                break
            if self.pacing is not None:
                self.pacing(event)
            admitted = self.admit is None \
                or self.admit(self.cursor.published + 1, event)
            if admitted:
                pipeline.publish(event)
            else:
                self.shed += 1
            self.cursor.advance(event)
            self._since_checkpoint += 1
            consumed += 1
            if self.on_publish is not None:
                self.on_publish(self.cursor.published)
            if len(pipeline.bus) >= self.pump_at:
                pipeline.pump(pipeline.config.pump_batch)
            if self._checkpoint_due():
                self.checkpoint()
        return consumed

    @property
    def done(self) -> bool:
        return self.exhausted or self.stopped

    def run(self, finish: bool = True) -> Optional[DiagnosisSnapshot]:
        """Replay to stream end (or graceful stop), then flush a final
        checkpoint and emit the last snapshot."""
        while not self.done:
            self.step()
        if not finish:
            return None
        return self.finalize()

    def finalize(self) -> DiagnosisSnapshot:
        """Flush the final checkpoint and emit the last snapshot.

        The checkpoint goes first: finish() drains the watermark, and
        a restart must resume from the pre-drain state to preserve the
        recovery contract.
        """
        if self.manager is not None and self._since_checkpoint:
            self.checkpoint()
        return self.pipeline.finish()


def resume_or_create(header, manager: Optional[CheckpointManager],
                     config=None, clock=None, fresh: bool = False
                     ) -> tuple[LivePipeline, ReplayCursor, bool]:
    """Restore the newest valid checkpoint, or start from scratch.

    Returns ``(pipeline, cursor, resumed)``; ``fresh=True`` skips the
    checkpoint lookup (an explicit cold start).
    """
    kwargs = {} if clock is None else {"clock": clock}
    if manager is not None and not fresh:
        state = manager.load_latest()
        if state is not None:
            pipeline, cursor = LivePipeline.restore(
                header, state, config=config, **kwargs)
            return pipeline, ReplayCursor.from_dict(cursor), True
    pipeline = LivePipeline.from_header(header, config=config,
                                        **kwargs)
    return pipeline, ReplayCursor(), False
