"""Fault containment for the live pipeline.

Two failure classes a long-running diagnosis service must absorb
without crashing:

* **malformed input** — a truncated JSONL line, a record whose fields
  fail to decode, an unknown ``kind``.  :class:`Quarantine` wraps the
  decode step: bad entries are counted, a bounded sample of errors is
  retained for operators, and the pipeline never sees them;
* **telemetry loss** — switches that stop reporting while the
  collective is clearly still running.  :class:`DegradationTracker`
  watches the gap between host-side event time and the freshest switch
  report; when reports go stale the diagnosis *confidence* is widened
  (lowered) instead of silently presenting a contention-free picture
  built from missing evidence.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar
from repro.core.units import Nanoseconds

log = logging.getLogger(__name__)

T = TypeVar("T")


@dataclass
class QuarantinedEntry:
    """One rejected input, kept for the operator's post-mortem."""

    line_no: int
    reason: str
    snippet: str


class Quarantine:
    """Never-crash decode boundary with bounded error retention."""

    def __init__(self, keep: int = 32) -> None:
        self.keep = keep
        self.count = 0
        self.by_reason: dict[str, int] = {}
        self.entries: list[QuarantinedEntry] = []

    @staticmethod
    def label_for(reason: str) -> str:
        """Normalize a free-form reason to a stable aggregation label.

        Leading whitespace and colons are stripped before the label is
        cut at the first remaining colon, so ``": EOFError: x"``,
        ``"EOFError: x"`` and ``"  EOFError : x"`` all aggregate under
        ``"EOFError"``; anything that normalizes to the empty string
        (all-whitespace, bare colons) lands under ``"unknown"``.
        """
        return reason.strip().lstrip(":").split(":", 1)[0].strip() \
            or "unknown"

    def admit(self, line_no: int, reason: str, snippet: str = "") -> None:
        """Record one rejected input."""
        self.count += 1
        reason = reason.strip()
        label = self.label_for(reason)
        self.by_reason[label] = self.by_reason.get(label, 0) + 1
        if len(self.entries) < self.keep:
            self.entries.append(QuarantinedEntry(
                line_no=line_no, reason=reason,
                snippet=snippet[:120]))
        log.warning("quarantined line %d: %s", line_no, reason)

    def guard(self, line_no: int, fn: Callable[[], T],
              snippet: str = "") -> Optional[T]:
        """Run ``fn``; on any exception, quarantine and return None."""
        try:
            return fn()
        except Exception as error:  # noqa: BLE001 - the whole point
            self.admit(line_no,
                       f"{type(error).__name__}: {error}", snippet)
            return None

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "by_reason": dict(sorted(self.by_reason.items())),
            "sample": [
                {"line": e.line_no, "reason": e.reason,
                 "snippet": e.snippet}
                for e in self.entries],
        }

    # -- checkpoint hooks ----------------------------------------------
    def state_dict(self) -> dict:
        return {
            "count": self.count,
            "by_reason": dict(sorted(self.by_reason.items())),
            "entries": [[e.line_no, e.reason, e.snippet]
                        for e in self.entries],
        }

    def load_state(self, state: dict) -> None:
        self.count = int(state["count"])
        self.by_reason = {str(k): int(v)
                          for k, v in state["by_reason"].items()}
        self.entries = [QuarantinedEntry(int(line), reason, snippet)
                        for line, reason, snippet in state["entries"]]


class DegradationTracker:
    """Confidence widening under switch-telemetry loss.

    ``report_gap_ns`` is how stale the freshest switch report may be —
    relative to the freshest *host-side* event time — before the
    diagnosis degrades.  Confidence decays linearly from 1.0 at the
    allowed gap down to ``floor`` at ``3x`` the allowed gap; a stream
    with step records but no switch reports at all sits at the floor.
    """

    def __init__(self, report_gap_ns: Nanoseconds,
                 floor: float = 0.25) -> None:
        self.report_gap_ns = max(1.0, report_gap_ns)
        self.floor = floor
        self.last_step_time = float("-inf")
        self.last_report_time = float("-inf")
        self.step_events = 0
        self.report_events = 0

    # ------------------------------------------------------------------
    def observe_step(self, event_time: float) -> None:
        self.step_events += 1
        self.last_step_time = max(self.last_step_time, event_time)

    def observe_report(self, event_time: float) -> None:
        self.report_events += 1
        self.last_report_time = max(self.last_report_time, event_time)

    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        return self.confidence() < 1.0

    def staleness_ns(self) -> float:
        """How far switch telemetry lags the host-side stream."""
        if self.step_events == 0:
            return 0.0
        if self.report_events == 0:
            return float("inf")
        return max(0.0, self.last_step_time - self.last_report_time)

    def confidence(self) -> float:
        """1.0 = full telemetry; ``floor`` = switch reports missing."""
        staleness = self.staleness_ns()
        if staleness <= self.report_gap_ns:
            return 1.0
        if staleness == float("inf"):
            return self.floor
        # linear decay over (gap, 3*gap]
        span = 2.0 * self.report_gap_ns
        excess = min(staleness - self.report_gap_ns, span)
        return max(self.floor, 1.0 - (1.0 - self.floor) * excess / span)

    def to_dict(self) -> dict:
        staleness = self.staleness_ns()
        return {
            "confidence": round(self.confidence(), 4),
            "degraded": self.degraded,
            "report_staleness_ns":
                None if staleness == float("inf") else staleness,
            "step_events": self.step_events,
            "report_events": self.report_events,
        }

    # -- checkpoint hooks ----------------------------------------------
    def state_dict(self) -> dict:
        # -inf (nothing seen yet) is not valid JSON; use None sentinels
        return {
            "last_step_time": None if math.isinf(self.last_step_time)
            else self.last_step_time,
            "last_report_time":
                None if math.isinf(self.last_report_time)
                else self.last_report_time,
            "step_events": self.step_events,
            "report_events": self.report_events,
        }

    def load_state(self, state: dict) -> None:
        self.last_step_time = float("-inf") \
            if state["last_step_time"] is None \
            else float(state["last_step_time"])
        self.last_report_time = float("-inf") \
            if state["last_report_time"] is None \
            else float(state["last_report_time"])
        self.step_events = int(state["step_events"])
        self.report_events = int(state["report_events"])
