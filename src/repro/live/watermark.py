"""Completion-time watermarking for out-of-order telemetry.

The analyzer wants events in completion-time order (§III-D1), but a
real monitoring stream interleaves hosts and switches whose clocks and
delivery paths skew.  :class:`WatermarkBuffer` is the standard fix: it
buffers events in an event-time heap and only *releases* those whose
time is at or below the watermark

    ``watermark = max(event time seen) - lateness_bound``,

so any event arriving up to ``lateness_bound`` nanoseconds out of order
is still emitted in sorted position.  Events that arrive *behind* the
already-advanced watermark are late beyond the bound; they are
discarded and counted (``late_discarded``) rather than silently folded
in at the wrong position.  ``flush()`` releases everything still
buffered (end of stream).
"""

from __future__ import annotations

import heapq
import math
from typing import Iterator, Optional

from repro.core.units import Nanoseconds
from repro.live.bus import (
    TelemetryEvent,
    decode_telemetry_event,
    encode_telemetry_event,
)


class WatermarkBuffer:
    """Reorder buffer bounded by event-time lateness, not by count.

    ``lateness_bound_ns <= 0`` degenerates to pass-through in arrival
    order (watermark == max time seen, nothing buffered for long).
    """

    def __init__(self, lateness_bound_ns: Nanoseconds = 0.0) -> None:
        self.lateness_bound_ns = max(0.0, lateness_bound_ns)
        self._heap: list[tuple[float, int, TelemetryEvent]] = []
        self._max_time_seen = float("-inf")
        self._released_through = float("-inf")
        self.late_discarded = 0
        self.observed = 0

    # ------------------------------------------------------------------
    @property
    def watermark(self) -> float:
        """No event at or before this time is still expected."""
        if self._max_time_seen == float("-inf"):
            return float("-inf")
        return self._max_time_seen - self.lateness_bound_ns

    @property
    def buffered(self) -> int:
        return len(self._heap)

    # ------------------------------------------------------------------
    def observe(self, event: TelemetryEvent
                ) -> Iterator[TelemetryEvent]:
        """Accept one event; yield every event the advanced watermark
        now releases, in event-time order.

        A late event (older than what has already been released) is
        discarded and counted — emitting it would reorder the output.
        """
        self.observed += 1
        if event.time < self._released_through:
            self.late_discarded += 1
            return
        self._max_time_seen = max(self._max_time_seen, event.time)
        heapq.heappush(self._heap, (event.time, event.seq, event))
        yield from self._release(self.watermark)

    def _release(self, through: float) -> Iterator[TelemetryEvent]:
        while self._heap and self._heap[0][0] <= through:
            time, _, event = heapq.heappop(self._heap)
            self._released_through = max(self._released_through, time)
            yield event

    def flush(self) -> Iterator[TelemetryEvent]:
        """Release everything buffered (stream end / forced snapshot)."""
        yield from self._release(float("inf"))

    # ------------------------------------------------------------------
    def oldest_buffered_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    # ------------------------------------------------------------------
    # checkpoint hooks
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe snapshot (±inf sentinels encoded as None)."""
        return {
            "max_time_seen": None if math.isinf(self._max_time_seen)
            else self._max_time_seen,
            "released_through":
                None if math.isinf(self._released_through)
                else self._released_through,
            "late_discarded": self.late_discarded,
            "observed": self.observed,
            "heap": [encode_telemetry_event(e)
                     for _, _, e in sorted(self._heap,
                                           key=lambda t: t[:2])],
        }

    def load_state(self, state: dict) -> None:
        self._max_time_seen = float("-inf") \
            if state["max_time_seen"] is None \
            else float(state["max_time_seen"])
        self._released_through = float("-inf") \
            if state["released_through"] is None \
            else float(state["released_through"])
        self.late_discarded = int(state["late_discarded"])
        self.observed = int(state["observed"])
        self._heap = [(event.time, event.seq, event) for event in
                      (decode_telemetry_event(e)
                       for e in state["heap"])]
        heapq.heapify(self._heap)
