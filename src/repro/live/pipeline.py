"""The online diagnosis pipeline: bus → watermark → graph → snapshot.

Wires the bounded :class:`~repro.live.bus.EventBus` and the
:class:`~repro.live.watermark.WatermarkBuffer` into the streaming
:class:`~repro.core.incremental.IncrementalWaitingGraph`, the signature
detectors and the Eq. 1-3 contributor rating, emitting rolling
:class:`DiagnosisSnapshot`\\ s.

Equivalence contract (tested): on a clean, fully-delivered stream the
*final* snapshot's critical path, bottleneck steps, findings and
contributor scores equal the batch
:func:`~repro.traces.store.analyze_trace` result for the same data —
the pipeline is the paper's online analyzer, not an approximation of
it.  The waiting graph itself stays memory-bounded via in-degree-zero
pruning; only O(steps) scalar aggregates (per-step windows, durations,
slowest flows) are retained for the steps the prune discards.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.units import Bytes, Nanoseconds
from repro.collective.primitives import StepSchedule
from repro.collective.runtime import StepRecord
from repro.core.diagnosis import DiagnosisResult, diagnose
from repro.core.incremental import IncrementalWaitingGraph
from repro.core.provenance import build_provenance
from repro.core.rating import (
    contribution_to_collective,
    contribution_to_flow,
)
from repro.core.waiting_graph import CriticalPathEntry
from repro.live.bus import BusPolicy, EventBus, TelemetryEvent
from repro.live.metrics import Histogram, MetricsRegistry
from repro.live.robustness import DegradationTracker, Quarantine
from repro.live.watermark import WatermarkBuffer
from repro.simnet.packet import FlowKey
from repro.simnet.telemetry import SwitchReport
from repro.traces.stream import TraceEvent, TraceHeader


@dataclass
class PipelineConfig:
    """Knobs of the live service."""

    #: bus bound; <= 0 = unbounded
    queue_capacity: int = 4096
    #: what to do when the bus is full
    policy: BusPolicy = BusPolicy.BLOCK
    #: out-of-order tolerance of the watermark (event-time ns)
    lateness_bound_ns: Nanoseconds = 0.0
    #: emit a rolling snapshot every N ingested events (0 = final only)
    snapshot_every: int = 0
    #: events pumped off the bus per :meth:`LivePipeline.pump` batch
    pump_batch: int = 64
    #: prune cadence of the incremental waiting graph
    prune_interval: int = 16
    #: bottleneck threshold, as in :class:`VedrfolnirAnalyzer`
    slowdown_factor: float = 1.5
    #: compute Eq. 1-3 contributor scores in each snapshot
    rate_contributors: bool = True
    #: switch-report staleness before confidence degrades; None = auto
    #: (4x the largest expected step time)
    report_gap_ns: Optional[Nanoseconds] = None


@dataclass
class DiagnosisSnapshot:
    """One rolling diagnosis emitted by the pipeline."""

    seq: int
    final: bool
    watermark_ns: Nanoseconds
    step_records_ingested: int
    switch_reports_ingested: int
    critical_path: list[CriticalPathEntry]
    bottleneck_steps: list[int]
    result: DiagnosisResult
    collective_scores: dict[FlowKey, float]
    #: 1.0 = full telemetry; lower = switch reports missing/stale
    confidence: float
    degraded: bool
    counters: dict = field(default_factory=dict)

    @property
    def detected_flows(self) -> set[FlowKey]:
        return self.result.detected_flows

    def top_contributors(self, n: int = 5) -> list[tuple[FlowKey, float]]:
        ranked = sorted(self.collective_scores.items(),
                        key=lambda kv: -kv[1])
        return ranked[:n]

    def to_dict(self, top: int = 5) -> dict:
        return {
            "seq": self.seq,
            "final": self.final,
            "watermark_ns": self.watermark_ns,
            "step_records": self.step_records_ingested,
            "switch_reports": self.switch_reports_ingested,
            "confidence": self.confidence,
            "degraded": self.degraded,
            "critical_path": [
                {"node": e.node, "step": e.step_index,
                 "start_ns": e.start_time, "end_ns": e.end_time,
                 "entered_via": e.entered_via}
                for e in self.critical_path],
            "bottleneck_steps": self.bottleneck_steps,
            "findings": [
                {"type": f.type.value, "detail": f.detail,
                 "root_ports": [str(p) for p in f.root_ports],
                 "culprit_flows": sorted(
                     fl.short() for fl in f.culprit_flows)}
                for f in self.result.findings],
            "contributors": [
                {"flow": flow.short(), "score": score}
                for flow, score in self.top_contributors(top)],
            "counters": self.counters,
        }

    def canonical_json(self, top: int = 5) -> str:
        """Key-sorted JSON of :meth:`to_dict` — the byte-equality form
        the chaos harnesses (single-pipeline and fleet) digest."""
        import json

        return json.dumps(self.to_dict(top), sort_keys=True)

    def summary_line(self) -> str:
        """One-line operator view (the ``repro tail`` format)."""
        findings = ",".join(sorted({f.type.value
                                    for f in self.result.findings})) \
            or "none"
        top = self.top_contributors(1)
        contributor = top[0][0].short() if top and top[0][1] > 0 \
            else "-"
        tag = "FINAL" if self.final else f"#{self.seq}"
        note = "" if self.confidence >= 1.0 \
            else f" confidence={self.confidence:.2f}"
        return (f"[{tag}] wm={self.watermark_ns / 1e6:.3f}ms "
                f"steps={self.step_records_ingested} "
                f"reports={self.switch_reports_ingested} "
                f"anomalies={findings} top={contributor}{note}")


class LivePipeline:
    """Streaming §III-D analyzer over a telemetry event stream."""

    def __init__(self, schedule: StepSchedule,
                 flow_keys: dict[tuple[str, int], FlowKey],
                 expected_step_times: dict[tuple[str, int], float],
                 pfc_xoff_bytes: Bytes,
                 config: Optional[PipelineConfig] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.schedule = schedule
        self.flow_keys = dict(flow_keys)
        self.expected_step_times = dict(expected_step_times)
        self.pfc_xoff_bytes = pfc_xoff_bytes
        self.config = config or PipelineConfig()
        self.clock = clock

        cfg = self.config
        self.bus = EventBus(cfg.queue_capacity, cfg.policy,
                            drain_hook=self._backpressure_drain)
        self.watermark = WatermarkBuffer(cfg.lateness_bound_ns)
        self.graph = IncrementalWaitingGraph(
            schedule, prune_interval=cfg.prune_interval)
        self.graph.ingest_listeners.append(self._aggregate_record)
        self.quarantine = Quarantine()
        self.degradation = DegradationTracker(
            cfg.report_gap_ns if cfg.report_gap_ns is not None
            else self._auto_report_gap_ns())

        self.reports: list[SwitchReport] = []
        #: per-step-index [min start, max end] over ALL ingested records
        self._windows: dict[int, list[float]] = {}
        #: duration of every ingested record (survives graph pruning)
        self._durations: dict[tuple[str, int], float] = {}
        #: per step index, the slowest record seen: (duration, node)
        self._slowest: dict[int, tuple[float, str]] = {}
        self._dupes = 0
        self._seq = 0
        self._ingested = {"step_record": 0, "switch_report": 0}
        self._since_snapshot = 0
        self._pending_arrivals: list[float] = []
        self._arrival_wall: dict[int, float] = {}
        self._started_wall: Optional[float] = None
        self._snapshot_seq = 0
        self.snapshots: list[DiagnosisSnapshot] = []
        self.on_snapshot: list[Callable[[DiagnosisSnapshot], None]] = []

        self.latency = Histogram(
            "live_ingest_to_snapshot_seconds",
            "wall time from event arrival on the bus to the snapshot "
            "that includes it")
        self.snapshot_cost = Histogram(
            "live_snapshot_build_seconds",
            "wall time to build one diagnosis snapshot")

    # ------------------------------------------------------------------
    @classmethod
    def from_header(cls, header: TraceHeader,
                    config: Optional[PipelineConfig] = None,
                    clock: Callable[[], float] = time.monotonic
                    ) -> "LivePipeline":
        return cls(header.schedule, header.flow_keys,
                   header.expected_step_times, header.pfc_xoff_bytes,
                   config=config, clock=clock)

    def _auto_report_gap_ns(self) -> float:
        expected = self.expected_step_times.values()
        largest = max(expected, default=0.0)
        return 4.0 * largest if largest > 0 else 1e7

    @property
    def collective_flow_keys(self) -> set[FlowKey]:
        return set(self.flow_keys.values())

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def publish(self, event: TraceEvent) -> bool:
        """Enqueue one decoded trace event onto the bus.

        Returns False when the event was shed by a drop policy."""
        if self._started_wall is None:
            self._started_wall = self.clock()
        self._seq += 1
        wrapped = TelemetryEvent(kind=event.kind, time=event.time,
                                 payload=event.payload, seq=self._seq)
        self._arrival_wall[self._seq] = self.clock()
        admitted = self.bus.publish(wrapped)
        if not admitted:
            self._arrival_wall.pop(self._seq, None)
        return admitted

    def publish_step_record(self, record: StepRecord) -> bool:
        """Live (non-trace) producers: a runtime's step-end listener."""
        return self.publish(TraceEvent("step_record", record.end_time,
                                       record, line_no=0))

    def publish_switch_report(self, report: SwitchReport) -> bool:
        """Live (non-trace) producers: a network's report sink."""
        return self.publish(TraceEvent("switch_report", report.time,
                                       report, line_no=0))

    def _backpressure_drain(self) -> None:
        self.pump(limit=max(1, self.config.pump_batch))

    def pump(self, limit: int = 0) -> int:
        """Consume up to ``limit`` events off the bus (all if 0)."""
        processed = 0
        for event in self.bus.drain(limit):
            processed += 1
            for released in self.watermark.observe(event):
                self._ingest(released)
        self._prune_arrivals()
        return processed

    def _prune_arrivals(self) -> None:
        # events shed by drop policies or the lateness bound leave
        # stale arrival entries; bound the map so they cannot leak
        if len(self._arrival_wall) > 65536:
            for seq in sorted(self._arrival_wall)[:-65536]:
                del self._arrival_wall[seq]

    def _ingest(self, event: TelemetryEvent) -> None:
        if event.kind == "step_record":
            record: StepRecord = event.payload  # type: ignore[assignment]
            key = (record.node, record.step_index)
            if key in self._durations:
                self._dupes += 1
            self.graph.submit(record)
            self.degradation.observe_step(record.end_time)
            self._ingested["step_record"] += 1
        elif event.kind == "switch_report":
            report: SwitchReport = event.payload  # type: ignore[assignment]
            self.reports.append(report)
            self.degradation.observe_report(report.time)
            self._ingested["switch_report"] += 1
        else:
            self.quarantine.admit(
                0, f"unroutable event kind {event.kind!r}")
            return
        arrival = self._arrival_wall.pop(event.seq, None)
        if arrival is not None:
            self._pending_arrivals.append(arrival)
        self._since_snapshot += 1
        every = self.config.snapshot_every
        if every > 0 and self._since_snapshot >= every:
            self.emit_snapshot(final=False)

    def _aggregate_record(self, record: StepRecord) -> None:
        """Ingest hook of the incremental graph: keep the O(steps)
        scalars the batch analyzer would read off the full record set,
        so pruning never changes the diagnosis."""
        idx = record.step_index
        window = self._windows.setdefault(
            idx, [record.start_time, record.end_time])
        window[0] = min(window[0], record.start_time)
        window[1] = max(window[1], record.end_time)
        self._durations[(record.node, idx)] = record.duration_ns
        slowest = self._slowest.get(idx)
        if slowest is None or record.duration_ns > slowest[0]:
            self._slowest[idx] = (record.duration_ns, record.node)

    # ------------------------------------------------------------------
    # diagnosis
    # ------------------------------------------------------------------
    def _critical_flows_by_step(
            self, path: list[CriticalPathEntry]) -> dict[int, str]:
        result = {entry.step_index: entry.node for entry in path}
        for idx, (_duration, node) in self._slowest.items():
            result.setdefault(idx, node)
        return result

    def emit_snapshot(self, final: bool = False) -> DiagnosisSnapshot:
        """Run the §III-D analysis over everything ingested so far."""
        build_start = self.clock()
        path = self.graph.critical_path()
        critical_nodes = self._critical_flows_by_step(path)
        exec_times: dict[int, float] = {}
        expect_times: dict[int, float] = {}
        critical_flow_keys: dict[int, FlowKey] = {}
        for idx, node in critical_nodes.items():
            duration = self._durations.get((node, idx))
            if duration is not None:
                exec_times[idx] = duration
            expect_times[idx] = self.expected_step_times.get(
                (node, idx), 0.0)
            flow_key = self.flow_keys.get((node, idx))
            if flow_key is not None:
                critical_flow_keys[idx] = flow_key
        cfg = self.config
        bottlenecks = sorted(
            idx for idx, t in exec_times.items()
            if t > cfg.slowdown_factor
            * expect_times.get(idx, float("inf")))

        cf_keys = self.collective_flow_keys
        overall = build_provenance(self.reports, cf_keys,
                                   self.pfc_xoff_bytes)
        result = diagnose(overall)

        collective_scores: dict[FlowKey, float] = {}
        if cfg.rate_contributors:
            step_graphs = self._per_step_graphs(cf_keys)
            for flow in sorted(overall.background_flows(),
                               key=lambda f: f.short()):
                collective_scores[flow] = contribution_to_collective(
                    flow, step_graphs or {0: overall},
                    critical_flow_keys, exec_times, expect_times)

        self._snapshot_seq += 1
        snapshot = DiagnosisSnapshot(
            seq=self._snapshot_seq,
            final=final,
            watermark_ns=self.watermark.watermark,
            step_records_ingested=self._ingested["step_record"],
            switch_reports_ingested=self._ingested["switch_report"],
            critical_path=path,
            bottleneck_steps=bottlenecks,
            result=result,
            collective_scores=collective_scores,
            confidence=self.degradation.confidence(),
            degraded=self.degradation.degraded,
            counters=self.counters(),
        )
        now = self.clock()
        for arrival in self._pending_arrivals:
            self.latency.observe(max(0.0, now - arrival))
        self._pending_arrivals.clear()
        self.snapshot_cost.observe(max(0.0, now - build_start))
        self._since_snapshot = 0
        self.snapshots.append(snapshot)
        for callback in self.on_snapshot:
            callback(snapshot)
        return snapshot

    def _per_step_graphs(self, cf_keys: set[FlowKey]) -> dict:
        graphs = {}
        for idx, (start, end) in self._windows.items():
            step_reports = [r for r in self.reports
                            if start <= r.time <= end]
            if step_reports:
                graphs[idx] = build_provenance(
                    step_reports, cf_keys, self.pfc_xoff_bytes)
        return graphs

    def per_flow_score(self, flow: FlowKey, cf: FlowKey) -> float:
        """Eq. 2 against the overall provenance graph (on demand)."""
        overall = build_provenance(self.reports,
                                   self.collective_flow_keys,
                                   self.pfc_xoff_bytes)
        return contribution_to_flow(overall, flow, cf)

    def finish(self) -> DiagnosisSnapshot:
        """Drain everything and emit the final snapshot."""
        self.pump()
        for released in self.watermark.flush():
            self._ingest(released)
        return self.emit_snapshot(final=True)

    # ------------------------------------------------------------------
    # checkpointing (crash-safe resume; see repro.live.checkpoint)
    # ------------------------------------------------------------------
    def state_dict(self, cursor: Optional[dict] = None) -> dict:
        """JSON-safe snapshot of everything the diagnosis depends on.

        Captures the in-flight bus queue and watermark heap alongside
        the incremental graph and the O(steps) aggregates, so a resume
        from this state plus the remaining stream produces a final
        :class:`DiagnosisSnapshot` bit-equal to an uninterrupted run
        (the recovery contract, tested by ``repro chaos``).  Wall-clock
        observability (latency histograms, arrival stamps) is excluded
        — it describes the dead process, not the diagnosis.
        """
        from repro.traces import serialize

        return {
            "cursor": dict(cursor) if cursor else {},
            "seq": self._seq,
            "ingested": dict(self._ingested),
            "since_snapshot": self._since_snapshot,
            "snapshot_seq": self._snapshot_seq,
            "dupes": self._dupes,
            "windows": {str(idx): list(window)
                        for idx, window in sorted(self._windows.items())},
            "durations": [[node, idx, duration]
                          for (node, idx), duration
                          in sorted(self._durations.items())],
            "slowest": [[idx, duration, node]
                        for idx, (duration, node)
                        in sorted(self._slowest.items())],
            "reports": [serialize.encode_switch_report(r)
                        for r in self.reports],
            "bus": self.bus.state_dict(),
            "watermark": self.watermark.state_dict(),
            "graph": self.graph.state_dict(),
            "quarantine": self.quarantine.state_dict(),
            "degradation": self.degradation.state_dict(),
        }

    def load_state(self, state: dict) -> dict:
        """Restore :meth:`state_dict` output; returns the cursor."""
        from repro.traces import serialize

        self._seq = int(state["seq"])
        self._ingested = {str(k): int(v)
                          for k, v in state["ingested"].items()}
        self._since_snapshot = int(state["since_snapshot"])
        self._snapshot_seq = int(state["snapshot_seq"])
        self._dupes = int(state["dupes"])
        self._windows = {int(idx): [float(low), float(high)]
                         for idx, (low, high)
                         in state["windows"].items()}
        self._durations = {(node, int(idx)): float(duration)
                           for node, idx, duration
                           in state["durations"]}
        self._slowest = {int(idx): (float(duration), node)
                         for idx, duration, node in state["slowest"]}
        self.reports = [serialize.decode_switch_report(r)
                        for r in state["reports"]]
        self.bus.load_state(state["bus"])
        self.watermark.load_state(state["watermark"])
        self.graph.load_state(state["graph"])
        self.quarantine.load_state(state["quarantine"])
        self.degradation.load_state(state["degradation"])
        # wall-clock bookkeeping restarts with the new process
        self._arrival_wall.clear()
        self._pending_arrivals.clear()
        self._started_wall = None
        self.snapshots.clear()
        return dict(state.get("cursor") or {})

    @classmethod
    def restore(cls, header: TraceHeader, state: dict,
                config: Optional[PipelineConfig] = None,
                clock: Callable[[], float] = time.monotonic
                ) -> tuple["LivePipeline", dict]:
        """Rebuild a pipeline from a trace header + checkpoint state."""
        pipeline = cls.from_header(header, config=config, clock=clock)
        cursor = pipeline.load_state(state)
        return pipeline, cursor

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def counters(self) -> dict:
        """Raw pipeline counters (embedded in every snapshot)."""
        stats = self.bus.stats
        graph = self.graph.stats()
        return {
            "published": stats.published,
            "consumed": stats.consumed,
            "dropped": stats.dropped,
            "backpressure_stalls": stats.backpressure_stalls,
            "bus_depth": len(self.bus),
            "bus_high_watermark": stats.high_watermark,
            "late_discarded": self.watermark.late_discarded,
            "watermark_buffered": self.watermark.buffered,
            "quarantined": self.quarantine.count,
            "duplicates": self._dupes,
            "graph_retained": graph["retained"],
            "graph_pruned": graph["pruned_total"],
            "prune_efficiency": round(graph["prune_efficiency"], 4),
            "snapshots": self._snapshot_seq,
        }

    def build_metrics(self, labels: Optional[dict[str, str]] = None
                      ) -> MetricsRegistry:
        """A full metrics registry over the pipeline's current state.

        ``labels`` tags every series (the fleet passes
        ``{"shard": ..., "tenant": ...}`` so one registry can hold many
        pipelines' series side by side).
        """
        registry = MetricsRegistry()
        stats = self.bus.stats
        graph = self.graph.stats()
        wall = (self.clock() - self._started_wall) \
            if self._started_wall is not None else 0.0
        total = sum(self._ingested.values())

        def merged(extra: Optional[dict] = None):
            if not labels and not extra:
                return None
            return {**(labels or {}), **(extra or {})}

        def counter(name, help, value):
            registry.counter(name, help, labels=merged()).inc(value)

        counter("live_events_published_total",
                "events offered to the bus", stats.published)
        counter("live_step_records_total",
                "step records ingested", self._ingested["step_record"])
        counter("live_switch_reports_total",
                "switch reports ingested",
                self._ingested["switch_report"])
        counter("live_bus_dropped_total",
                "events shed by drop-oldest/drop-newest",
                stats.dropped)
        registry.counter(
            "live_bus_dropped_events_total",
            "events shed by the drop-oldest policy",
            labels=merged({"policy": "drop-oldest"})
        ).inc(stats.dropped_oldest)
        registry.counter(
            "live_bus_dropped_events_total",
            "events shed by the drop-newest policy",
            labels=merged({"policy": "drop-newest"})
        ).inc(stats.dropped_newest)
        counter("live_bus_backpressure_total",
                "publishes that stalled on a full bus",
                stats.backpressure_stalls)
        counter("live_late_discarded_total",
                "events behind the watermark's lateness bound",
                self.watermark.late_discarded)
        counter("live_quarantined_total",
                "malformed inputs quarantined", self.quarantine.count)
        for reason in sorted(self.quarantine.by_reason):
            registry.counter(
                "live_quarantined_by_reason_total",
                "malformed inputs quarantined, by normalized reason",
                labels=merged({"reason": reason})
            ).inc(self.quarantine.by_reason[reason])
        counter("live_duplicate_records_total",
                "step records seen more than once", self._dupes)
        counter("live_snapshots_total",
                "diagnosis snapshots emitted", self._snapshot_seq)
        counter("live_graph_pruned_total",
                "waiting-graph records discarded by pruning",
                graph["pruned_total"])

        registry.gauge("live_bus_depth",
                       "events currently queued",
                       labels=merged()).set(len(self.bus))
        registry.gauge(
            "live_bus_high_watermark",
            "deepest the bus has been",
            labels=merged()).set(stats.high_watermark)
        registry.gauge(
            "live_watermark_buffered",
            "events held for reordering",
            labels=merged()).set(self.watermark.buffered)
        registry.gauge(
            "live_graph_retained",
            "waiting-graph records currently held",
            labels=merged()).set(graph["retained"])
        registry.gauge(
            "live_prune_efficiency",
            "fraction of ingested records already pruned",
            labels=merged()).set(round(graph["prune_efficiency"], 6))
        registry.gauge(
            "live_ingest_rate_per_sec",
            "ingested events / wall second",
            labels=merged()
        ).set(round(total / wall, 3) if wall > 0 else 0.0)
        registry.gauge(
            "live_confidence",
            "diagnosis confidence under telemetry loss",
            labels=merged()
        ).set(round(self.degradation.confidence(), 4))
        if labels:
            # the pipeline owns these histogram instances; tag them so
            # a multi-pipeline registry keys them apart
            self.latency.labels = dict(labels)
            self.snapshot_cost.labels = dict(labels)
        registry.attach(self.latency)
        registry.attach(self.snapshot_cost)
        return registry
