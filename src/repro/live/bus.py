"""Bounded in-process event bus with explicit backpressure.

The live pipeline's ingestion boundary: producers (a trace replayer, a
network report sink) publish :class:`TelemetryEvent`\\ s, the pipeline
drains them.  The queue is bounded; what happens when a producer
outruns the consumer is an explicit, counted policy decision:

* ``block`` — exert backpressure: the bus synchronously invokes the
  registered drain hook (the consumer runs inline, which is what
  "the producer blocks" means in a single-threaded service) and, if
  the hook cannot make room, raises :class:`BusOverflow`;
* ``drop-oldest`` — evict the oldest queued event to admit the new one
  (bounded staleness, favors fresh telemetry);
* ``drop-newest`` — reject the incoming event (favors already-queued
  work, the classic load-shedding policy).

Every drop and every backpressure stall is counted — a lossy bus that
cannot say how lossy it was is a diagnosis bug factory.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator, Optional
from repro.core.units import Nanoseconds


class BusPolicy(enum.Enum):
    """What :meth:`EventBus.publish` does when the queue is full."""

    BLOCK = "block"
    DROP_OLDEST = "drop-oldest"
    DROP_NEWEST = "drop-newest"


class BusOverflow(RuntimeError):
    """Raised under the ``block`` policy when backpressure cannot free
    space (no drain hook, or the hook consumed nothing)."""


def encode_telemetry_event(event: "TelemetryEvent") -> dict:
    """JSON-safe encoding of one in-flight event (checkpointing)."""
    from repro.traces import serialize

    if event.kind == "step_record":
        payload = serialize.encode_step_record(event.payload)
    elif event.kind == "switch_report":
        payload = serialize.encode_switch_report(event.payload)
    else:
        # unknown kinds carry no decodable payload; they are
        # quarantined at ingest either way, so None round-trips the
        # observable behavior
        payload = None
    return {"kind": event.kind, "time": event.time,
            "seq": event.seq, "payload": payload}


def decode_telemetry_event(data: dict) -> "TelemetryEvent":
    """Inverse of :func:`encode_telemetry_event`."""
    from repro.traces import serialize

    kind = data["kind"]
    payload = data["payload"]
    if payload is not None:
        if kind == "step_record":
            payload = serialize.decode_step_record(payload)
        elif kind == "switch_report":
            payload = serialize.decode_switch_report(payload)
    return TelemetryEvent(kind=kind, time=float(data["time"]),
                          payload=payload, seq=int(data["seq"]))


@dataclass(frozen=True)
class TelemetryEvent:
    """One unit of monitoring data on the bus.

    ``kind`` is ``step_record`` or ``switch_report``; ``time`` is the
    event's *event time* in simulation nanoseconds (a step record's
    completion time, a switch report's emission time) — the quantity
    the watermark advances on.  ``seq`` breaks ties deterministically.
    """

    kind: str
    time: Nanoseconds
    payload: object
    seq: int = 0


@dataclass
class BusStats:
    """Mutable counter block, exposed on the bus and in metrics."""

    published: int = 0
    consumed: int = 0
    dropped_oldest: int = 0
    dropped_newest: int = 0
    backpressure_stalls: int = 0
    high_watermark: int = 0

    @property
    def dropped(self) -> int:
        return self.dropped_oldest + self.dropped_newest


class EventBus:
    """A bounded FIFO of :class:`TelemetryEvent` with drop accounting.

    ``drain_hook`` (set by the pipeline) is called under the ``block``
    policy when the queue is full; it should consume at least one
    event.  ``capacity <= 0`` means unbounded.
    """

    def __init__(self, capacity: int = 4096,
                 policy: BusPolicy = BusPolicy.BLOCK,
                 drain_hook: Optional[Callable[[], None]] = None) -> None:
        if isinstance(policy, str):
            policy = BusPolicy(policy)
        self.capacity = capacity
        self.policy = policy
        self.drain_hook = drain_hook
        self._queue: deque[TelemetryEvent] = deque()
        self.stats = BusStats()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return self.capacity > 0 and len(self._queue) >= self.capacity

    def publish(self, event: TelemetryEvent) -> bool:
        """Enqueue one event.  Returns True if the event was admitted."""
        stats = self.stats
        if self.full:
            if self.policy is BusPolicy.BLOCK:
                stats.backpressure_stalls += 1
                if self.drain_hook is not None:
                    self.drain_hook()
                if self.full:
                    raise BusOverflow(
                        f"bus full ({self.capacity} events) and "
                        f"backpressure freed no space")
            elif self.policy is BusPolicy.DROP_OLDEST:
                self._queue.popleft()
                stats.dropped_oldest += 1
            else:  # DROP_NEWEST
                stats.dropped_newest += 1
                return False
        self._queue.append(event)
        stats.published += 1
        stats.high_watermark = max(stats.high_watermark,
                                   len(self._queue))
        return True

    # ------------------------------------------------------------------
    def take(self) -> Optional[TelemetryEvent]:
        """Dequeue the oldest event, or None when empty."""
        if not self._queue:
            return None
        self.stats.consumed += 1
        return self._queue.popleft()

    def drain(self, limit: int = 0) -> Iterator[TelemetryEvent]:
        """Yield up to ``limit`` queued events (all of them if 0)."""
        taken = 0
        while self._queue and (limit <= 0 or taken < limit):
            taken += 1
            self.stats.consumed += 1
            yield self._queue.popleft()

    # ------------------------------------------------------------------
    # checkpoint hooks
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe snapshot of the queue and its counters."""
        stats = self.stats
        return {
            "queue": [encode_telemetry_event(e) for e in self._queue],
            "stats": {
                "published": stats.published,
                "consumed": stats.consumed,
                "dropped_oldest": stats.dropped_oldest,
                "dropped_newest": stats.dropped_newest,
                "backpressure_stalls": stats.backpressure_stalls,
                "high_watermark": stats.high_watermark,
            },
        }

    def load_state(self, state: dict) -> None:
        self._queue = deque(decode_telemetry_event(e)
                            for e in state["queue"])
        counters = state["stats"]
        self.stats = BusStats(**{key: int(counters[key])
                                 for key in counters})
