"""Online streaming diagnosis service.

In deployment the analyzer is not a post-mortem script: §III-D1 has it
"queue the collected data entries in order of their completion time and
construct the waiting graph sequentially".  This package is that
service layer — a bounded event bus with explicit backpressure
(:mod:`repro.live.bus`), completion-time watermarking for out-of-order
and late telemetry (:mod:`repro.live.watermark`), the diagnosis
pipeline that wires both into :class:`~repro.core.incremental.
IncrementalWaitingGraph` and the signature detectors
(:mod:`repro.live.pipeline`), self-observability for the pipeline
itself (:mod:`repro.live.metrics`), and malformed-input quarantine plus
telemetry-loss degradation (:mod:`repro.live.robustness`).

    header = read_header("run.jsonl")
    pipeline = LivePipeline.from_header(header)
    for event in merged_events("run.jsonl"):
        pipeline.publish(event)
    snapshot = pipeline.finish()        # == batch analyze_trace result
"""

from repro.live.bus import (
    BusOverflow,
    BusPolicy,
    EventBus,
    TelemetryEvent,
)
from repro.live.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_metrics_text,
)
from repro.live.pipeline import (
    DiagnosisSnapshot,
    LivePipeline,
    PipelineConfig,
)
from repro.live.robustness import DegradationTracker, Quarantine
from repro.live.watermark import WatermarkBuffer

__all__ = [
    "BusOverflow",
    "BusPolicy",
    "EventBus",
    "TelemetryEvent",
    "WatermarkBuffer",
    "LivePipeline",
    "PipelineConfig",
    "DiagnosisSnapshot",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_metrics_text",
    "Quarantine",
    "DegradationTracker",
]
