"""Online streaming diagnosis service.

In deployment the analyzer is not a post-mortem script: §III-D1 has it
"queue the collected data entries in order of their completion time and
construct the waiting graph sequentially".  This package is that
service layer — a bounded event bus with explicit backpressure
(:mod:`repro.live.bus`), completion-time watermarking for out-of-order
and late telemetry (:mod:`repro.live.watermark`), the diagnosis
pipeline that wires both into :class:`~repro.core.incremental.
IncrementalWaitingGraph` and the signature detectors
(:mod:`repro.live.pipeline`), self-observability for the pipeline
itself (:mod:`repro.live.metrics`), and malformed-input quarantine plus
telemetry-loss degradation (:mod:`repro.live.robustness`).

Durability: the service is crash-safe.  :mod:`repro.live.checkpoint`
persists atomic, versioned snapshots of the full pipeline state keyed
to a durable stream cursor, :mod:`repro.live.supervisor` restarts a
crashed serve loop with capped backoff and drains gracefully on
SIGTERM, and :mod:`repro.live.chaos` is the seeded kill/corrupt/resume
harness proving the recovery contract (resumed final snapshot
bit-equal to an uninterrupted run).

    header = read_header("run.jsonl")
    pipeline = LivePipeline.from_header(header)
    for event in merged_events("run.jsonl"):
        pipeline.publish(event)
    snapshot = pipeline.finish()        # == batch analyze_trace result
"""

from repro.live.bus import (
    BusOverflow,
    BusPolicy,
    EventBus,
    TelemetryEvent,
)
from repro.live.chaos import (
    ChaosPlan,
    ChaosReport,
    SimulatedCrash,
    derive_kill_points,
    perturbed_events,
    run_chaos,
)
from repro.live.checkpoint import (
    CheckpointCorrupt,
    CheckpointManager,
    CheckpointPolicy,
    ReplayCursor,
    TraceReplayer,
    resume_or_create,
)
from repro.live.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_metrics_text,
)
from repro.live.pipeline import (
    DiagnosisSnapshot,
    LivePipeline,
    PipelineConfig,
)
from repro.live.robustness import DegradationTracker, Quarantine
from repro.live.supervisor import (
    CrashLoopError,
    GracefulShutdown,
    RestartPolicy,
    Supervisor,
)
from repro.live.watermark import WatermarkBuffer

__all__ = [
    "BusOverflow",
    "BusPolicy",
    "EventBus",
    "TelemetryEvent",
    "WatermarkBuffer",
    "LivePipeline",
    "PipelineConfig",
    "DiagnosisSnapshot",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_metrics_text",
    "Quarantine",
    "DegradationTracker",
    "CheckpointCorrupt",
    "CheckpointManager",
    "CheckpointPolicy",
    "ReplayCursor",
    "TraceReplayer",
    "resume_or_create",
    "Supervisor",
    "RestartPolicy",
    "CrashLoopError",
    "GracefulShutdown",
    "ChaosPlan",
    "ChaosReport",
    "SimulatedCrash",
    "run_chaos",
    "derive_kill_points",
    "perturbed_events",
]
