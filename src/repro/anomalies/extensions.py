"""Extension anomalies beyond the paper's four evaluated scenarios
(§II-B lists them; §V discusses extensibility): forwarding loops and
PFC deadlock.

Both produce signatures the diagnosis layer already understands:
TTL-expiry drops for loops, cycles in the PFC-causality edges for
deadlock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.anomalies.injectors import inject_forwarding_loop
from repro.collective.runtime import CollectiveRuntime
from repro.simnet.network import Network
from repro.simnet.packet import FlowKey
from repro.simnet.topology import build_switch_ring
from repro.simnet.units import KB


@dataclass
class LoopInjection:
    """A transient forwarding loop on one collective flow."""

    flow: FlowKey
    at_switch: str
    back_toward: str
    heal_after_ns: Optional[float]


def inject_transient_loop(network: Network, runtime: CollectiveRuntime,
                          node: str, step: int = 0,
                          heal_after_ns: Optional[float] = None
                          ) -> LoopInjection:
    """Bounce one collective flow's packets back the way they came
    (asynchronous reconfiguration gone wrong, §II-B).

    The loop forms at the second switch of the flow's path and
    optionally heals after ``heal_after_ns`` — packets caught in it die
    by TTL and the sender's go-back-N recovers once routing heals.
    """
    key = runtime.flow_keys[(node, step)]
    path = network.routing.path(key)
    switches = [n for n in path if n in network.switches]
    if len(switches) < 2:
        raise ValueError(
            f"flow {key.short()} is single-switch; no loop possible")
    at_switch, back_toward = switches[1], switches[0]
    inject_forwarding_loop(network, key, at_switch, back_toward)
    if heal_after_ns is not None:
        network.sim.schedule(
            heal_after_ns,
            lambda: network.routing.clear_override(at_switch, key))
    return LoopInjection(flow=key, at_switch=at_switch,
                         back_toward=back_toward,
                         heal_after_ns=heal_after_ns)


def build_deadlock_network(flow_bytes: int = 2_000_000,
                           xoff_bytes: int = 64 * KB) -> tuple:
    """A three-switch ring rigged for PFC deadlock.

    Three flows are each forced the *long* way around the ring, so every
    inter-switch link carries two flows' worth of line-rate traffic.
    Queues build everywhere at once, each switch pauses its upstream
    neighbor on the ring, and the pause cycle closes — the hold-and-wait
    condition of §II-B's deadlock case.

    Returns ``(network, flows)``; drive the network yourself, then feed
    the switch telemetry to :func:`repro.core.diagnosis.diagnose` and
    look for :class:`AnomalyType.PFC_DEADLOCK`.
    """
    from repro.simnet.network import NetworkConfig

    config = NetworkConfig(pfc_xoff_bytes=xoff_bytes,
                           pfc_xon_bytes=xoff_bytes // 2,
                           window_bytes=512 * KB)
    network = Network(build_switch_ring(3, hosts_per_switch=2),
                      config=config)
    # hosts: h0,h1 on s0; h2,h3 on s1; h4,h5 on s2
    routes = [
        ("h0", "h4", ["s0", "s1", "s2"]),   # long way (short way: s0->s2)
        ("h2", "h0", ["s1", "s2", "s0"]),
        ("h4", "h2", ["s2", "s0", "s1"]),
    ]
    flows = []
    for src, dst, path in routes:
        key = network.new_flow_key(src, dst)
        for here, nxt in zip(path, path[1:]):
            network.routing.set_override(here, key, nxt)
        flow = network.create_flow(src, dst, flow_bytes, key=key,
                                   tag="background")
        flow.start()
        flows.append(flow)
    return network, flows
