"""Primitive anomaly injectors.

Each injector mutates a live :class:`~repro.simnet.network.Network`
(creating flows, arming storm timers, or overriding routes) and returns
the objects an experiment needs for ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.simnet.flow import RdmaFlow
from repro.simnet.network import Network
from repro.simnet.packet import FlowKey
from repro.simnet.pfc import PfcStormInjector, PortRef


@dataclass(frozen=True)
class BackgroundFlowSpec:
    """One background flow to inject."""

    src: str
    dst: str
    size_bytes: int
    start_ns: float


def inject_background_flows(network: Network,
                            specs: Sequence[BackgroundFlowSpec]
                            ) -> list[RdmaFlow]:
    """Create and start the given background flows."""
    flows = []
    for spec in specs:
        flow = network.create_flow(spec.src, spec.dst, spec.size_bytes,
                                   start_time=spec.start_ns,
                                   tag="background")
        flow.start()
        flows.append(flow)
    return flows


def inject_incast(network: Network, sources: Sequence[str], target: str,
                  size_bytes: int, start_ns: float) -> list[RdmaFlow]:
    """Simultaneous same-size flows from ``sources`` to one target."""
    specs = [BackgroundFlowSpec(src, target, size_bytes, start_ns)
             for src in sources]
    return inject_background_flows(network, specs)


def inject_pfc_storm(network: Network, switch_id: str, port: int,
                     start_ns: float, duration_ns: float,
                     refresh_ns: Optional[float] = None) -> PfcStormInjector:
    """Arm a continuous PAUSE injection at (switch, port)."""
    injector = PfcStormInjector(network, switch_id, port, start_ns,
                                duration_ns, refresh_ns=refresh_ns)
    injector.arm()
    return injector


def inject_forwarding_loop(network: Network, flow: FlowKey,
                           at_switch: str, back_toward: str) -> None:
    """Route ``flow`` from ``at_switch`` back toward ``back_toward``,
    creating a loop (packets eventually die by TTL and show up in the
    switch's ttl-drop telemetry)."""
    network.routing.set_override(at_switch, flow, back_toward)


def inject_ecmp_imbalance(network: Network, flow_keys: Sequence[FlowKey],
                          core: str, agg_position: int,
                          half: int = 2) -> Optional[PortRef]:
    """Force the given (cross-pod) flows through one core switch.

    Models an ECMP misjudgment (§II-B): instead of spreading over
    equal-cost uplinks, every flow is pinned — at its source edge switch
    and aggregation switch — onto the path through ``core``.  Flows
    bound for the same destination pod then share the core's downlink,
    the load-imbalance congestion point.

    Returns the shared core egress port toward the destination pod (the
    diagnosis ground truth), or None if fewer than two flows converge.
    """
    dst_pods = set()
    for key in flow_keys:
        src_host = int(key.src[1:])
        dst_host = int(key.dst[1:])
        src_pod = src_host // (half * half)
        dst_pods.add(dst_host // (half * half))
        edge = f"e{src_host // half}"
        agg = f"a{src_pod * half + agg_position}"
        network.routing.set_override(edge, key, agg)
        network.routing.set_override(agg, key, core)
    if len(flow_keys) < 2 or len(dst_pods) != 1:
        return None
    dst_pod = dst_pods.pop()
    dst_agg = f"a{dst_pod * half + agg_position}"
    core_switch = network.switches[core]
    return PortRef(core, core_switch.neighbor_port[dst_agg])


def path_links(network: Network, key: FlowKey) -> list[tuple[str, str]]:
    """(a, b) node pairs along a flow's current path."""
    path = network.routing.path(key)
    return list(zip(path, path[1:]))


def ingress_port_on_path(network: Network, key: FlowKey,
                         switch_id: str) -> Optional[PortRef]:
    """The ingress port at ``switch_id`` through which ``key``'s packets
    arrive (a storm injected there halts the flow's previous hop)."""
    path = network.routing.path(key)
    for i, node in enumerate(path):
        if node == switch_id and i > 0:
            switch = network.switches[switch_id]
            return PortRef(switch_id, switch.neighbor_port[path[i - 1]])
    return None
