"""Anomaly injection and scenario generation (§II-B, §IV-A).

* :mod:`repro.anomalies.injectors` — primitive injectors: background
  flows, incast bursts, PFC storms, forwarding loops.
* :mod:`repro.anomalies.scenarios` — the paper's four evaluation
  scenario generators (flow contention, incast, PFC storm, PFC
  backpressure) with ground truth for scoring, plus loop/deadlock
  extension scenarios.
"""

from repro.anomalies.injectors import (
    BackgroundFlowSpec,
    inject_background_flows,
    inject_incast,
    inject_pfc_storm,
    inject_forwarding_loop,
)
from repro.anomalies.scenarios import (
    GroundTruth,
    ScenarioCase,
    ScenarioConfig,
    make_contention_cases,
    make_incast_cases,
    make_pfc_storm_cases,
    make_pfc_backpressure_cases,
    make_cases,
    SCENARIOS,
)

__all__ = [
    "BackgroundFlowSpec",
    "inject_background_flows",
    "inject_incast",
    "inject_pfc_storm",
    "inject_forwarding_loop",
    "GroundTruth",
    "ScenarioCase",
    "ScenarioConfig",
    "make_contention_cases",
    "make_incast_cases",
    "make_pfc_storm_cases",
    "make_pfc_backpressure_cases",
    "make_cases",
    "SCENARIOS",
]
