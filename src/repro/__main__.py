"""``python -m repro`` entry point."""

from repro.cli import main

if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except KeyboardInterrupt:
        # the documented interrupted-by-user code (128 + SIGINT)
        raise SystemExit(130) from None
