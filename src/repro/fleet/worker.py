"""Multiprocess shard workers and their supervision.

One OS process per shard: the worker rebuilds its
:class:`~repro.fleet.service.ShardRuntime` from a primitives-only spec
dict (the same idiom as :mod:`repro.experiments.runner` — specs must
cross a ``spawn`` pickle boundary), replays its tenants, and publishes
:class:`~repro.fleet.aggregator.ShardReport` JSON atomically to a
well-known path.  The parent process never shares memory with a
shard; the report file *is* the fan-in edge.

Supervision reuses :class:`~repro.live.supervisor.Supervisor`: the
target spawns the worker process and raises
:class:`WorkerCrashed` on a nonzero exit, so SIGKILLed shards restart
with backoff and a crash-loop budget.  Workers are spawned (never
forked) because supervision runs one thread per shard.

Deterministic kill points for the chaos harness use a *hang flag*: a
worker given ``hang_at`` writes the flag file once it has consumed
that many events, then spins; the supervising parent polls the flag
and SIGKILLs the pid.  The flag persists, so the restarted attempt
sails past the kill point — one crash per flag, at an exact event
count, no timing races.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import sys
import tempfile
import threading
import time
from typing import Callable, Optional

from repro.core import failpoints
from repro.fleet.aggregator import ShardReport
from repro.fleet.service import FleetConfig, build_shard_runtime
from repro.fleet.sharding import TenantSpec
from repro.live.supervisor import RestartPolicy, Supervisor


class WorkerCrashed(RuntimeError):
    """A shard worker process exited nonzero (or was signalled)."""

    def __init__(self, shard_id: int, exitcode: Optional[int]) -> None:
        super().__init__(
            f"shard {shard_id} worker exited with {exitcode}")
        self.shard_id = shard_id
        self.exitcode = exitcode


# ----------------------------------------------------------------------
# spec plumbing (primitives only — crosses the spawn pickle boundary)
# ----------------------------------------------------------------------

def make_shard_spec(config: FleetConfig, shard_id: int,
                    specs: list[TenantSpec], report_path: str,
                    hang_at: int = 0,
                    report_every_rounds: int = 8,
                    endpoint: Optional[list] = None,
                    heartbeat_every_rounds: int = 1,
                    worker_failpoints: str = "",
                    failpoint_seed: int = 0,
                    preload_traces: bool = False) -> dict:
    return {
        "shard_id": shard_id,
        "tenants": [spec.to_dict() for spec in specs],
        "policy": config.policy.to_dict(),
        "workdir": config.workdir,
        "batch_events": config.batch_events,
        "report_every_rounds": report_every_rounds,
        "report_path": report_path,
        "hang_at": hang_at,
        "hang_flag": f"{report_path}.hang",
        # streaming channel (None = report files only)
        "endpoint": endpoint,
        "heartbeat_every_rounds": heartbeat_every_rounds,
        # worker-side fault injection (chaos; "" = none)
        "failpoints": worker_failpoints,
        "failpoint_seed": failpoint_seed,
        # decode each distinct trace once, replay from memory (bench)
        "preload_traces": preload_traces,
    }


def write_report(path: str, report: ShardReport) -> None:
    """Atomic publish (tmp + fsync + rename): a reader never sees a
    torn report, and a SIGKILL mid-write leaves the previous one.

    Failpoint site ``worker.report.write`` (``error`` fails the
    publish, ``drop`` silently skips it, ``delay`` stalls it)."""
    if failpoints.fire("worker.report.write") == "drop":
        return
    target = os.path.abspath(path)
    directory = os.path.dirname(target) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # repro: noqa RPR030 - best-effort tmp cleanup; the original error re-raises below
            pass
        raise


def read_report(path: str) -> Optional[ShardReport]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return ShardReport.from_dict(json.load(handle))
    except (OSError, json.JSONDecodeError, KeyError, ValueError):
        return None


# ----------------------------------------------------------------------
# worker process body
# ----------------------------------------------------------------------

def _preload_factory(tenants: list[TenantSpec]):
    """A tenant factory replaying each distinct trace from memory
    (decode once per trace file, not once per tenant) — the bench's
    in-memory idiom, available to worker processes via the
    ``preload_traces`` spec key."""
    from repro.fleet.tenancy import TenantRuntime
    from repro.traces import trace_events
    from repro.traces.stream import read_header

    cache = {}
    for spec in tenants:
        if spec.trace not in cache:
            # trace_events sniffs the on-disk format, so a fleet spec
            # can point tenants at columnar conversions for the cheap
            # decode path without any spec change
            cache[spec.trace] = (read_header(spec.trace),
                                 list(trace_events(spec.trace)))

    def factory(spec, shard_id, tenant_policy, ckpt_dir):
        header, events = cache[spec.trace]
        return TenantRuntime(spec.tenant, shard_id, tenant_policy,
                             events=iter(events), header=header,
                             checkpoint_dir=ckpt_dir)

    return factory


def worker_main(spec: dict) -> int:
    """Run one shard to completion inside the current process.

    With an ``endpoint`` in the spec, rolling reports and heartbeats
    stream to the parent's :class:`~repro.fleet.transport
    .ReportListener`; a broken channel falls back to the atomic
    report file, and the **final** report is always written to the
    file regardless — the streamed copies only make the parent's
    rolling snapshots fresher, never the final diagnosis different.
    """
    from repro.fleet.tenancy import TenantPolicy

    if spec.get("failpoints"):
        failpoints.configure(spec["failpoints"],
                             seed=int(spec.get("failpoint_seed", 0)))
    else:
        failpoints.configure_from_env(
            seed=int(spec.get("failpoint_seed", 0)))

    policy = TenantPolicy.from_dict(spec["policy"])
    tenants = [TenantSpec.from_dict(t) for t in spec["tenants"]]
    factory = _preload_factory(tenants) \
        if spec.get("preload_traces") else None
    runtime = build_shard_runtime(
        spec["shard_id"], tenants, policy, spec.get("workdir"),
        tenant_factory=factory)
    batch = int(spec.get("batch_events", 64))
    report_every = max(1, int(spec.get("report_every_rounds", 8)))
    report_path = spec["report_path"]
    hang_at = int(spec.get("hang_at", 0) or 0)
    hang_flag = spec.get("hang_flag")
    endpoint = spec.get("endpoint")
    heartbeat_every = max(1, int(spec.get("heartbeat_every_rounds",
                                          1)))
    publisher = None
    if endpoint:
        from repro.fleet.transport import ReportPublisher
        publisher = ReportPublisher(endpoint, spec["shard_id"])
    rounds = 0

    def emit(final: bool) -> ShardReport:
        """Publish one report: stream when the channel works, fall
        back to (and, for final reports, always also use) the file."""
        report = runtime.report(final=final)
        report.lateness = runtime.merged_latency().state_dict()
        if publisher is not None:
            publisher.stamp(report)
        streamed = publisher.publish(report) \
            if publisher is not None else False
        if final or not streamed:
            if streamed is False and publisher is not None:
                publisher.fallbacks += 1
                publisher.stamp(report)
            write_report(report_path, report)
        return report

    try:
        while not runtime.done:
            runtime.step(batch)
            rounds += 1
            if hang_at and hang_flag \
                    and runtime.events_consumed >= hang_at \
                    and not os.path.exists(hang_flag):
                # deterministic chaos kill point: raise the flag, then
                # spin until the supervising parent SIGKILLs us.  The
                # flag outlives the kill, so the restart runs through.
                with open(hang_flag, "w", encoding="utf-8") as handle:
                    handle.write(str(runtime.events_consumed))
                while True:  # pragma: no cover - terminated by SIGKILL
                    time.sleep(0.05)  # repro: noqa RPR026 - unbounded by design: the supervising parent SIGKILLs this pid
            if publisher is not None \
                    and rounds % heartbeat_every == 0:
                publisher.heartbeat()
            if rounds % report_every == 0:
                emit(final=False)
        runtime.finalize()
        emit(final=True)
    finally:
        if publisher is not None:
            publisher.close()
    return 0


def worker_entry(spec_json: str) -> None:
    """Spawn entrypoint (module-level: must pickle under spawn)."""
    sys.exit(worker_main(json.loads(spec_json)))


# ----------------------------------------------------------------------
# parent-side supervision
# ----------------------------------------------------------------------

def run_worker_process(spec: dict, ctx=None,
                       poll_s: float = 0.02,
                       on_kill: Optional[Callable[[int], None]] = None
                       ) -> Optional[int]:
    """Spawn one worker attempt and wait for it; SIGKILL it if it
    raises its hang flag (the chaos kill protocol).  Returns the exit
    code (negative = death by signal)."""
    ctx = ctx or multiprocessing.get_context("spawn")
    process = ctx.Process(target=worker_entry,
                          args=(json.dumps(spec),))
    hang_flag = spec.get("hang_flag")
    # a flag already on disk is a *spent* kill point: the restarted
    # worker skips the hang, and the parent must not re-kill it
    armed = bool(hang_flag) and not os.path.exists(hang_flag)
    process.start()
    killed = False
    try:
        while process.is_alive():
            process.join(poll_s)
            if armed and not killed and process.is_alive() \
                    and os.path.exists(hang_flag):
                assert process.pid is not None
                os.kill(process.pid, signal.SIGKILL)
                killed = True
                if on_kill is not None:
                    on_kill(process.pid)
    finally:
        # an on_kill callback raising (or a KeyboardInterrupt in the
        # poll loop) must not orphan the spawned child
        if process.is_alive():
            process.kill()
        process.join()
    return process.exitcode


def run_shard_supervised(spec: dict,
                         policy: Optional[RestartPolicy] = None,
                         on_crash=None, ctx=None) -> ShardReport:
    """Run one shard under restart supervision until its final report
    lands.  Crashes (including chaos SIGKILLs) restart the worker
    with backoff; the crash-loop breaker still bounds a shard that
    dies deterministically."""
    shard_id = spec["shard_id"]

    def target(_attempt: int) -> None:
        exitcode = run_worker_process(spec, ctx=ctx)
        if exitcode != 0:
            raise WorkerCrashed(shard_id, exitcode)

    supervisor = Supervisor(target, policy=policy, on_crash=on_crash)
    supervisor.run()
    report = read_report(spec["report_path"])
    if report is None or not report.final:
        raise WorkerCrashed(shard_id, None)
    report.restarts = supervisor.crash_count
    return report


def run_fleet_supervised(
        specs: dict[int, dict],
        policy: Optional[RestartPolicy] = None,
        on_crash=None,
) -> dict[int, ShardReport]:
    """Run prepared shard specs under supervision, one supervising
    thread per shard, and collect the final (file-read) reports."""
    results: dict[int, ShardReport] = {}
    errors: dict[int, BaseException] = {}

    def supervise(shard_id: int) -> None:
        try:
            # each thread owns its shard_id key and every thread is
            # joined before the dicts are read, so no lock is needed
            results[shard_id] = run_shard_supervised(  # repro: noqa RPR020
                specs[shard_id], policy=policy,
                on_crash=(lambda record, s=shard_id:
                          on_crash(s, record))
                if on_crash is not None else None)
        except BaseException as error:  # noqa: BLE001 - joined below
            errors[shard_id] = error  # repro: noqa RPR020

    threads = [threading.Thread(target=supervise, args=(shard_id,),
                                name=f"fleet-shard-{shard_id}")
               for shard_id in specs]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        shard_id, error = sorted(errors.items())[0]
        raise WorkerCrashed(shard_id, None) from error
    return results


def run_fleet_multiprocess(
        config: FleetConfig,
        plan: dict[int, list[TenantSpec]],
        report_dir: str,
        hang_at: Optional[dict[int, int]] = None,
        policy: Optional[RestartPolicy] = None,
        on_crash=None,
        report_every_rounds: int = 8,
        endpoint: Optional[list] = None,
        heartbeat_every_rounds: int = 1,
        worker_failpoints: str = "",
        failpoint_seed: int = 0,
        preload_traces: bool = False,
) -> dict[int, ShardReport]:
    """Run every shard of ``plan`` as a supervised worker process
    (one supervising thread per shard) and collect final reports.
    With an ``endpoint``, workers additionally stream rolling reports
    and heartbeats there (see :mod:`repro.fleet.transport`)."""
    os.makedirs(report_dir, exist_ok=True)
    hang_at = hang_at or {}
    specs = {
        shard_id: make_shard_spec(
            config, shard_id, tenant_specs,
            os.path.join(report_dir, f"shard-{shard_id:03d}.json"),
            hang_at=hang_at.get(shard_id, 0),
            report_every_rounds=report_every_rounds,
            endpoint=endpoint,
            heartbeat_every_rounds=heartbeat_every_rounds,
            worker_failpoints=worker_failpoints,
            failpoint_seed=failpoint_seed,
            preload_traces=preload_traces)
        for shard_id, tenant_specs in sorted(plan.items())
    }
    return run_fleet_supervised(specs, policy=policy,
                                on_crash=on_crash)


__all__ = [
    "WorkerCrashed",
    "make_shard_spec",
    "write_report",
    "read_report",
    "worker_main",
    "worker_entry",
    "run_worker_process",
    "run_shard_supervised",
    "run_fleet_supervised",
    "run_fleet_multiprocess",
]
