"""Fleet-level chaos: SIGKILL real shard workers, prove recovery.

The single-pipeline harness (:mod:`repro.live.chaos`) proves the
per-tenant contract with *simulated* crashes.  This harness raises the
stakes to the fleet's availability claim:

    SIGKILL any subset of shard worker *processes* mid-replay (plus
    optional checkpoint corruption), let supervision restart them,
    and the final fleet snapshot's diagnosis content is bit-equal to
    an uninterrupted in-process run — and tenants on surviving
    shards are entirely untouched.

Kill points are deterministic (the worker hang-flag protocol in
:mod:`repro.fleet.worker`): the victim worker spins at an exact event
count and the supervisor SIGKILLs it, so the same seed reproduces the
same experiment.

``transport=True`` raises the stakes once more: workers stream their
reports over the socket channel (:mod:`repro.fleet.transport`) while
seeded network faults drop/garble received chunks, reset connections
and stall heartbeats — and the SIGKILLed shard's restart backoff is
tuned long enough that the health tracker declares it *dead*, forcing
degraded rolling snapshots.  The experiment passes only if the fleet
went degraded-then-recovered **and** the final diagnosis is still
bit-equal to the uninterrupted baseline (the atomic report files are
always the final fan-in, so no streamed fault can corrupt it).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.core import failpoints
from repro.fleet.aggregator import (
    FleetAggregator,
    FleetSnapshot,
    HealthPolicy,
)
from repro.fleet.service import FleetConfig, FleetService
from repro.fleet.sharding import (
    HashRing,
    TenantSpec,
    shard_workdir,
    tenant_checkpoint_dir,
)
from repro.fleet.worker import run_fleet_multiprocess
from repro.live.chaos import corrupt_newest_checkpoint
from repro.live.checkpoint import CheckpointManager
from repro.live.supervisor import RestartPolicy
from repro.traces.stream import merged_events


@dataclass(frozen=True)
class FleetChaosPlan:
    """One reproducible fleet chaos experiment (a seed, victims, and
    what to do to their corpses)."""

    seed: int = 0
    #: shard workers to SIGKILL (chosen seeded among non-empty shards)
    kills: int = 1
    #: where in the victim shard's stream the kill lands (fraction of
    #: its total event count)
    kill_event_frac: float = 0.5
    #: additionally damage one victim tenant's newest checkpoint
    #: between the kill and the restart
    corrupt_checkpoint: bool = False
    #: truncate (instead of bit-flip) that checkpoint
    truncate_checkpoint: bool = False
    #: stream reports over the socket transport with injected
    #: network faults and health-aware degraded snapshots
    transport: bool = False
    #: parent-side probability of dropping a received chunk
    net_drop: float = 0.0
    #: parent-side probability of garbling a received chunk
    net_garble: float = 0.0
    #: parent-side connection resets to inject (count)
    net_resets: int = 0
    #: worker-side probability of stalling a heartbeat
    stall_heartbeats: float = 0.0


@dataclass
class FleetChaosReport:
    """Outcome of one :func:`run_fleet_chaos` experiment."""

    plan: FleetChaosPlan
    shards: int = 0
    tenants: int = 0
    victims: list[int] = field(default_factory=list)
    kills_delivered: int = 0
    restarts: int = 0
    checkpoints_corrupted: int = 0
    baseline_digest: str = ""
    recovered_digest: str = ""
    equal: bool = False
    survivors_clean: bool = False
    # transport-mode observations (zero / empty in file-only runs)
    degraded_snapshots: int = 0
    recovered: bool = True
    transport_stats: dict = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return self.equal and self.survivors_clean \
            and self.kills_delivered >= len(self.victims) \
            and self.recovered

    def to_dict(self) -> dict:
        return {
            "seed": self.plan.seed,
            "kills": self.plan.kills,
            "kill_event_frac": self.plan.kill_event_frac,
            "corrupt_checkpoint": self.plan.corrupt_checkpoint,
            "truncate_checkpoint": self.plan.truncate_checkpoint,
            "transport": self.plan.transport,
            "shards": self.shards,
            "tenants": self.tenants,
            "victims": list(self.victims),
            "kills_delivered": self.kills_delivered,
            "restarts": self.restarts,
            "checkpoints_corrupted": self.checkpoints_corrupted,
            "baseline_digest": self.baseline_digest,
            "recovered_digest": self.recovered_digest,
            "equal": self.equal,
            "survivors_clean": self.survivors_clean,
            "degraded_snapshots": self.degraded_snapshots,
            "recovered": self.recovered,
            "transport_stats": dict(self.transport_stats),
            "passed": self.passed,
        }

    def summary_line(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        extras = []
        if self.checkpoints_corrupted:
            extras.append(
                f"corrupted={self.checkpoints_corrupted}")
        if self.plan.transport:
            extras.append(f"degraded={self.degraded_snapshots}")
            extras.append(
                f"recovered={str(self.recovered).lower()}")
        tail = f" {' '.join(extras)}" if extras else ""
        return (f"[{verdict}] seed={self.plan.seed} "
                f"shards={self.shards} tenants={self.tenants} "
                f"victims={self.victims} "
                f"restarts={self.restarts} "
                f"bit-equal={str(self.equal).lower()} "
                f"survivors-clean="
                f"{str(self.survivors_clean).lower()}{tail}")


def default_restart_policy(seed: int = 0) -> RestartPolicy:
    """Fast, bounded backoff: chaos experiments restart quickly but a
    deterministically-dying shard still trips the breaker."""
    return RestartPolicy(max_restarts=8, window_s=60.0,
                         backoff_base_s=0.05, backoff_factor=2.0,
                         backoff_cap_s=0.5, jitter_frac=0.1,
                         seed=seed)


def transport_restart_policy(seed: int = 0) -> RestartPolicy:
    """Slow first backoff for transport chaos: the SIGKILLed shard
    stays down well past ``dead_after_s``, so the health tracker
    deterministically declares it dead and the fleet publishes
    degraded snapshots before the restart recovers it."""
    return RestartPolicy(max_restarts=8, window_s=60.0,
                         backoff_base_s=1.0, backoff_factor=2.0,
                         backoff_cap_s=2.0, jitter_frac=0.1,
                         seed=seed)


def transport_health_policy() -> HealthPolicy:
    """Grace periods matched to :func:`transport_restart_policy`:
    a killed shard (>=1s down) sails past ``dead_after_s``."""
    return HealthPolicy(stale_after_s=0.15, dead_after_s=0.3)


def transport_failpoints(plan: FleetChaosPlan) -> tuple[str, str]:
    """The plan's network faults as ``REPRO_FAILPOINTS`` spec strings
    — ``(parent_side, worker_side)``.  Parent-side faults mangle the
    receive path (dropped/garbled chunks, connection resets); the
    worker side stalls heartbeats."""
    parent = []
    if plan.net_drop > 0:
        parent.append(f"transport.recv.drop:drop@{plan.net_drop}")
    if plan.net_garble > 0:
        parent.append(
            f"transport.recv.garble:garble@{plan.net_garble}")
    if plan.net_resets > 0:
        parent.append(
            f"transport.conn.reset:drop@0.2x{plan.net_resets}")
    worker = []
    if plan.stall_heartbeats > 0:
        worker.append(
            f"transport.heartbeat:drop@{plan.stall_heartbeats}")
    return ",".join(parent), ",".join(worker)


def _shard_event_total(specs: Sequence[TenantSpec]) -> int:
    return sum(sum(1 for _ in merged_events(spec.trace))
               for spec in specs)


def _survivor_digests(snapshot: FleetSnapshot,
                      victims: Sequence[int]) -> list[dict]:
    return [t.to_dict() for t in snapshot.tenants
            if t.shard_id not in victims]


def run_fleet_chaos(tenants: Sequence[TenantSpec],
                    workdir: Union[str, Path],
                    plan: FleetChaosPlan,
                    config: Optional[FleetConfig] = None,
                    restart_policy: Optional[RestartPolicy] = None,
                    health: Optional[HealthPolicy] = None,
                    on_merge: Optional[Callable[[FleetSnapshot],
                                                None]] = None,
                    aggregator: Optional[FleetAggregator] = None
                    ) -> FleetChaosReport:
    """Execute one seeded fleet chaos experiment.

    Baseline: an uninterrupted in-process :class:`FleetService`
    (stateless — no checkpoints) over the same tenants and ring.
    Chaos run: real worker processes with per-tenant durability under
    ``workdir``, the planned victims SIGKILLed mid-replay and
    supervised back to completion.  Both fleets' final snapshots are
    compared on their diagnosis content.

    With ``plan.transport`` the chaos run streams its reports over
    the socket channel under the plan's network faults; ``on_merge``
    observes every rolling snapshot and ``aggregator`` lets a caller
    (the CLI's metrics exporter) hold the live aggregation state.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    config = config or FleetConfig()
    report = FleetChaosReport(plan=plan)

    ring = HashRing(config.shards, config.vnodes)
    fleet_plan = ring.assign(tenants)
    report.shards = config.shards
    report.tenants = sum(len(s) for s in fleet_plan.values())

    # --- baseline: in-process, stateless, uninterrupted --------------
    baseline_config = replace(config, workdir=None)
    baseline = FleetService(baseline_config, list(tenants))
    baseline_final = baseline.run()
    report.baseline_digest = baseline_final.diagnosis_digest()

    # --- choose victims (seeded) and their deterministic kill points -
    rng = random.Random(plan.seed)
    candidates = sorted(shard_id
                        for shard_id, specs in fleet_plan.items()
                        if specs)
    victims = sorted(rng.sample(
        candidates, min(max(0, plan.kills), len(candidates))))
    report.victims = victims
    hang_at = {}
    for victim in victims:
        total = _shard_event_total(fleet_plan[victim])
        hang_at[victim] = max(1, int(total * plan.kill_event_frac))

    # --- chaos run: real processes, real SIGKILL, real resume --------
    state_dir = workdir / "state"
    chaos_config = replace(config, workdir=str(state_dir))
    corrupt_done = {"done": False}

    def on_crash(shard_id: int, _record) -> None:
        report.kills_delivered += 1
        if not plan.corrupt_checkpoint or corrupt_done["done"]:
            return
        specs = fleet_plan[shard_id]
        if not specs:
            return
        ckpt_dir = tenant_checkpoint_dir(
            shard_workdir(state_dir, shard_id), specs[0].tenant)
        manager = CheckpointManager(ckpt_dir,
                                    config.policy.checkpoint_policy())
        damaged = corrupt_newest_checkpoint(
            manager, random.Random(plan.seed ^ 0x5EED),
            truncate=plan.truncate_checkpoint)
        if damaged is not None:
            report.checkpoints_corrupted += 1
        corrupt_done["done"] = True

    if plan.transport:
        from repro.fleet.transport import run_fleet_streaming

        parent_faults, worker_faults = transport_failpoints(plan)
        failpoints.configure(parent_faults, seed=plan.seed)
        try:
            outcome = run_fleet_streaming(
                chaos_config, fleet_plan, str(workdir / "reports"),
                health=health or transport_health_policy(),
                hang_at=hang_at,
                policy=restart_policy
                or transport_restart_policy(plan.seed),
                on_crash=on_crash, on_merge=on_merge,
                merge_every_s=0.05,
                worker_failpoints=worker_faults,
                failpoint_seed=plan.seed,
                aggregator=aggregator)
        finally:
            failpoints.clear()
        results = outcome.results
        recovered_final = outcome.final
        report.degraded_snapshots = outcome.degraded_snapshots
        report.recovered = not recovered_final.degraded
        report.transport_stats = dict(outcome.transport)
    else:
        results = run_fleet_multiprocess(
            chaos_config, fleet_plan, str(workdir / "reports"),
            hang_at=hang_at,
            policy=restart_policy
            or default_restart_policy(plan.seed),
            on_crash=on_crash)
        final_aggregator = FleetAggregator(sorted(fleet_plan),
                                           config.mailbox_capacity)
        for shard_report in results.values():
            final_aggregator.offer(shard_report)
        recovered_final = final_aggregator.merge(final=True)
    report.restarts = sum(r.restarts for r in results.values())
    report.recovered_digest = recovered_final.diagnosis_digest()
    report.equal = recovered_final.diagnosis_json() \
        == baseline_final.diagnosis_json()
    report.survivors_clean = \
        _survivor_digests(recovered_final, victims) \
        == _survivor_digests(baseline_final, victims)
    return report


__all__ = [
    "FleetChaosPlan",
    "FleetChaosReport",
    "default_restart_policy",
    "transport_restart_policy",
    "transport_health_policy",
    "transport_failpoints",
    "run_fleet_chaos",
]
