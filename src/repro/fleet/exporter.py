"""Scrapeable HTTP metrics endpoint (Prometheus text exposition).

Stdlib-only (:mod:`http.server`): a daemon-threaded
``ThreadingHTTPServer`` serving

* ``GET /metrics`` — the fleet registry rendered in Prometheus text
  exposition format 0.0.4, with ``shard``/``tenant`` labels on the
  per-shard and per-tenant series;
* ``GET /healthz`` — liveness probe;
* ``GET /fleet``  — the newest fleet snapshot as JSON.

The registry is re-built per scrape through a caller-supplied
callable, so the exporter never holds stale metric objects and never
touches pipeline state off the scheduler thread beyond reading
counters.
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.live.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_help,
    full_name,
)

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _fmt(value) -> str:
    """A Prometheus-parseable sample value."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _type_of(metric) -> str:
    if isinstance(metric, Counter):
        return "counter"
    if isinstance(metric, Gauge):
        return "gauge"
    if isinstance(metric, Histogram):
        return "histogram"
    return "untyped"


def _histogram_lines(metric: Histogram) -> list[str]:
    base = dict(metric.labels or {})
    lines = []
    cumulative = 0
    for bound, count in zip(metric.bounds, metric.counts):
        cumulative += count
        lines.append(
            f"{full_name(metric.name + '_bucket', {**base, 'le': _fmt(bound)})}"
            f" {cumulative}")
    lines.append(
        f"{full_name(metric.name + '_bucket', {**base, 'le': '+Inf'})}"
        f" {metric.total}")
    lines.append(
        f"{full_name(metric.name + '_sum', metric.labels)}"
        f" {_fmt(metric.sum)}")
    lines.append(
        f"{full_name(metric.name + '_count', metric.labels)}"
        f" {metric.total}")
    return lines


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format 0.0.4.

    Metrics sharing a base name form one family: a single
    ``# HELP``/``# TYPE`` header followed by every labeled sample,
    in deterministic (exposition-name) order.
    """
    families: dict[str, list] = {}
    for metric in registry.metrics():
        families.setdefault(metric.name, []).append(metric)
    lines: list[str] = []
    for name in sorted(families):
        members = families[name]
        head = members[0]
        if head.help:
            lines.append(f"# HELP {name} {escape_help(head.help)}")
        lines.append(f"# TYPE {name} {_type_of(head)}")
        for metric in members:
            if isinstance(metric, Histogram):
                lines.extend(_histogram_lines(metric))
            else:
                lines.append(
                    f"{metric.exposition_name} {_fmt(metric.value)}")
    return "\n".join(lines) + "\n"


class MetricsExporter:
    """Daemon-threaded scrape endpoint over a registry factory."""

    def __init__(self,
                 registry_fn: Callable[[], MetricsRegistry],
                 host: str = "127.0.0.1", port: int = 0,
                 status_fn: Optional[Callable[[], Optional[dict]]]
                 = None) -> None:
        self.registry_fn = registry_fn
        self.status_fn = status_fn
        self.host = host
        self.port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def _handler_class(self):
        exporter = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *_args) -> None:
                pass  # scrapes must not spam the serve loop's stderr

            def _send(self, status: int, content_type: str,
                      body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        text = render_prometheus(
                            exporter.registry_fn())
                        self._send(200, CONTENT_TYPE,
                                   text.encode("utf-8"))
                    elif path == "/healthz":
                        self._send(200, "text/plain; charset=utf-8",
                                   b"ok\n")
                    elif path == "/fleet":
                        status = exporter.status_fn() \
                            if exporter.status_fn else None
                        body = json.dumps(
                            status if status is not None else {},
                            sort_keys=True).encode("utf-8")
                        self._send(
                            200, "application/json; charset=utf-8",
                            body)
                    else:
                        self._send(404,
                                   "text/plain; charset=utf-8",
                                   b"not found\n")
                except BrokenPipeError:  # repro: noqa RPR030 - scraper went away mid-write; nothing to surface
                    pass

        return Handler

    # ------------------------------------------------------------------
    def start(self) -> int:
        """Bind and serve in a daemon thread; returns the bound port
        (useful with ``port=0``)."""
        if self._server is not None:
            return self.port
        self._server = ThreadingHTTPServer(
            (self.host, self.port), self._handler_class())
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="fleet-metrics-exporter", daemon=True)
        self._thread.start()
        return self.port

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsExporter":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()


__all__ = ["MetricsExporter", "render_prometheus", "CONTENT_TYPE"]
