"""Consistent-hash shard routing for the diagnosis fleet.

One :class:`~repro.live.pipeline.LivePipeline` serves one collective
(one *tenant*).  A fleet serves thousands, so tenants are partitioned
across N shards by consistent hashing:

* the hash is SHA-256 based (:func:`stable_hash`), never Python's
  ``hash`` — routing must agree across processes and runs regardless
  of ``PYTHONHASHSEED``;
* each shard owns ``vnodes`` points on a ring
  (:class:`HashRing`), so tenant load spreads evenly and growing the
  fleet from N to N+1 shards moves only ~1/(N+1) of tenants
  (tested);
* events can also be routed by :class:`~repro.simnet.packet.FlowKey`
  (:func:`key_for_flow`) — a collective's flows hash to the tenant
  that owns them, so per-flow telemetry lands on the same shard as the
  host-side records it joins against.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.simnet.packet import FlowKey


def stable_hash(text: str) -> int:
    """A process-stable 64-bit hash of ``text`` (SHA-256 prefix)."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def key_for_flow(flow: FlowKey) -> str:
    """The routing key of per-flow telemetry (the flow's 5-tuple)."""
    return f"{flow.src}:{flow.src_port}->{flow.dst}:{flow.dst_port}" \
           f"/{flow.protocol}"


@dataclass(frozen=True)
class TenantSpec:
    """One monitored collective: a stable tenant id and its stream."""

    tenant: str
    trace: str

    def to_dict(self) -> dict:
        return {"tenant": self.tenant, "trace": self.trace}

    @classmethod
    def from_dict(cls, data: dict) -> "TenantSpec":
        return cls(tenant=str(data["tenant"]), trace=str(data["trace"]))


class HashRing:
    """Consistent-hash ring over integer shard ids.

    ``vnodes`` virtual points per shard smooth the partition; lookups
    are O(log(shards * vnodes)) bisects into a sorted point list.
    """

    def __init__(self, shards: int, vnodes: int = 64) -> None:
        if shards <= 0:
            raise ValueError(f"need at least one shard, got {shards}")
        if vnodes <= 0:
            raise ValueError(f"need at least one vnode, got {vnodes}")
        self.shards = shards
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(vnodes):
                points.append(
                    (stable_hash(f"shard-{shard}#{replica}"), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def shard_for(self, key: str) -> int:
        """The shard owning ``key`` (first ring point at or after its
        hash, wrapping)."""
        point = stable_hash(key)
        index = bisect.bisect_left(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def shard_for_flow(self, flow: FlowKey) -> int:
        return self.shard_for(key_for_flow(flow))

    def assign(self, tenants: Iterable[TenantSpec]
               ) -> dict[int, list[TenantSpec]]:
        """Partition tenants across shards; every shard id appears in
        the result (possibly with an empty list), tenants stay in
        sorted-by-id order inside each shard."""
        plan: dict[int, list[TenantSpec]] = {
            shard: [] for shard in range(self.shards)}
        for spec in sorted(tenants, key=lambda t: t.tenant):
            plan[self.shard_for(spec.tenant)].append(spec)
        return plan


def plan_shards(tenants: Sequence[TenantSpec], shards: int,
                vnodes: int = 64) -> dict[int, list[TenantSpec]]:
    """Convenience: build a ring and partition ``tenants`` over it."""
    return HashRing(shards, vnodes).assign(tenants)


def replicate_tenants(traces: Sequence[str], replicate: int = 1
                      ) -> list[TenantSpec]:
    """Expand trace paths into tenant specs.

    ``replicate > 1`` clones each trace into that many logical tenants
    (``<stem>``, ``<stem>-1``, ...) — the cheap way to present a fleet
    of hundreds of monitored collectives from a handful of captures.
    """
    specs: list[TenantSpec] = []
    seen: set[str] = set()
    for trace in traces:
        stem = _stem(trace)
        base = stem
        suffix = 0
        while base in seen:
            suffix += 1
            base = f"{stem}.{suffix}"
        for copy in range(max(1, replicate)):
            tenant = base if copy == 0 else f"{base}-{copy}"
            seen.add(tenant)
            specs.append(TenantSpec(tenant=tenant, trace=trace))
    return specs


def _stem(path: str) -> str:
    name = path.replace("\\", "/").rsplit("/", 1)[-1]
    return name.rsplit(".", 1)[0] if "." in name else name


def moved_tenants(before: dict[int, list[TenantSpec]],
                  after: dict[int, list[TenantSpec]]) -> int:
    """How many tenants changed shard between two plans (the
    consistent-hash stability metric the tests pin)."""
    owner_before = {t.tenant: shard
                    for shard, specs in before.items() for t in specs}
    owner_after = {t.tenant: shard
                   for shard, specs in after.items() for t in specs}
    return sum(1 for tenant, shard in owner_before.items()
               if owner_after.get(tenant, shard) != shard)


def shard_workdir(root, shard_id: int) -> str:
    """The per-shard state directory (checkpoints, results) under the
    fleet workdir."""
    return str(Path(root) / f"shard-{shard_id:03d}")


def tenant_checkpoint_dir(shard_dir, tenant: str) -> str:
    """Each tenant owns its own checkpoint dir inside its shard's
    directory, so per-tenant resume cursors never interleave."""
    safe = "".join(c if c.isalnum() or c in "-_." else "_"
                   for c in tenant)
    return str(Path(shard_dir) / f"tenant-{safe}" / "checkpoints")


__all__ = [
    "HashRing",
    "TenantSpec",
    "stable_hash",
    "key_for_flow",
    "plan_shards",
    "replicate_tenants",
    "moved_tenants",
    "shard_workdir",
    "tenant_checkpoint_dir",
]
