"""repro.fleet — sharded multi-tenant diagnosis fleet.

One :class:`~repro.live.pipeline.LivePipeline` diagnoses one
collective.  This package scales that to a *fleet*: tenants
(monitored collectives) are consistent-hashed across N shards
(:mod:`~repro.fleet.sharding`), each shard replays its tenants under
per-tenant isolation budgets (:mod:`~repro.fleet.tenancy`) — in
process (:mod:`~repro.fleet.service`) or as supervised worker
processes (:mod:`~repro.fleet.worker`) — and per-shard reports fan in
through bounded mailboxes into deterministic fleet snapshots
(:mod:`~repro.fleet.aggregator`), scrapeable over HTTP in Prometheus
text format (:mod:`~repro.fleet.exporter`).

The load-bearing contract, proven by :mod:`~repro.fleet.chaos`
(``repro fleet chaos``): SIGKILL any shard worker mid-replay, let
supervision resume it from its tenants' checkpoints, and the final
fleet snapshot's diagnosis content is bit-equal to an uninterrupted
run — with surviving shards' tenants untouched.
"""

from repro.fleet.aggregator import (
    FleetAggregator,
    FleetSnapshot,
    ShardMailbox,
    ShardReport,
    TenantDigest,
    merge_reports,
)
from repro.fleet.exporter import MetricsExporter, render_prometheus
from repro.fleet.service import (
    FleetConfig,
    FleetService,
    ShardRuntime,
    build_shard_runtime,
    registry_from_snapshot,
)
from repro.fleet.sharding import (
    HashRing,
    TenantSpec,
    key_for_flow,
    moved_tenants,
    plan_shards,
    replicate_tenants,
    stable_hash,
)
from repro.fleet.tenancy import TenantPolicy, TenantRuntime

__all__ = [
    "FleetAggregator",
    "FleetConfig",
    "FleetService",
    "FleetSnapshot",
    "HashRing",
    "MetricsExporter",
    "ShardMailbox",
    "ShardReport",
    "ShardRuntime",
    "TenantDigest",
    "TenantPolicy",
    "TenantRuntime",
    "TenantSpec",
    "build_shard_runtime",
    "key_for_flow",
    "merge_reports",
    "moved_tenants",
    "plan_shards",
    "registry_from_snapshot",
    "render_prometheus",
    "replicate_tenants",
    "stable_hash",
]
