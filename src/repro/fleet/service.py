"""The in-process fleet: shard runtimes, scheduler, fan-in, metrics.

:class:`FleetService` is the single-process execution mode: every
shard is a :class:`ShardRuntime` stepped round-robin by one scheduler
loop, and rolling :class:`~repro.fleet.aggregator.FleetSnapshot`\\ s
fan in through a :class:`~repro.fleet.aggregator.FleetAggregator`.
It is the reference semantics for the multi-process mode
(:mod:`repro.fleet.worker` runs one ``ShardRuntime`` per OS process):
both build shard state through :func:`build_shard_runtime`, so a
supervised fleet that crashes and resumes must converge to the same
final fleet snapshot this service produces uninterrupted.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.fleet.aggregator import (
    FleetAggregator,
    FleetSnapshot,
    ShardReport,
    TenantDigest,
)
from repro.fleet.sharding import (
    HashRing,
    TenantSpec,
    shard_workdir,
    tenant_checkpoint_dir,
)
from repro.fleet.tenancy import TenantPolicy, TenantRuntime
from repro.live.metrics import Histogram, MetricsRegistry


@dataclass
class FleetConfig:
    """Fleet-wide wiring knobs (primitives only — ships to workers)."""

    #: number of shards tenants are hashed across
    shards: int = 4
    #: virtual ring points per shard
    vnodes: int = 64
    #: isolation policy applied to every tenant
    policy: TenantPolicy = field(default_factory=TenantPolicy)
    #: fleet state root (per-shard checkpoint dirs); None = stateless
    workdir: Optional[str] = None
    #: stream events granted to each tenant per scheduling round
    batch_events: int = 64
    #: scheduling rounds between rolling fleet merges
    merge_every_rounds: int = 4
    #: bounded per-shard mailbox depth at the aggregation tier
    mailbox_capacity: int = 4

    def to_dict(self) -> dict:
        return {
            "shards": self.shards,
            "vnodes": self.vnodes,
            "policy": self.policy.to_dict(),
            "workdir": self.workdir,
            "batch_events": self.batch_events,
            "merge_every_rounds": self.merge_every_rounds,
            "mailbox_capacity": self.mailbox_capacity,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetConfig":
        return cls(
            shards=int(data["shards"]),
            vnodes=int(data["vnodes"]),
            policy=TenantPolicy.from_dict(data["policy"]),
            workdir=data.get("workdir"),
            batch_events=int(data["batch_events"]),
            merge_every_rounds=int(data["merge_every_rounds"]),
            mailbox_capacity=int(data["mailbox_capacity"]),
        )


def build_shard_runtime(
        shard_id: int,
        specs: Sequence[TenantSpec],
        policy: TenantPolicy,
        workdir: Optional[str] = None,
        tenant_factory: Optional[Callable[[TenantSpec, int,
                                           TenantPolicy,
                                           Optional[str]],
                                          TenantRuntime]] = None,
) -> "ShardRuntime":
    """The one constructor both execution modes share.

    ``workdir`` (the *fleet* root) turns on per-tenant durability:
    each tenant gets its own checkpoint directory under the shard's
    directory and resumes from it if snapshots exist.  A
    ``tenant_factory`` lets in-memory fleets (the benchmark) inject
    pre-decoded event streams instead of re-reading trace files.
    """
    shard_dir = shard_workdir(workdir, shard_id) \
        if workdir is not None else None
    tenants = []
    for spec in sorted(specs, key=lambda s: s.tenant):
        ckpt_dir = tenant_checkpoint_dir(shard_dir, spec.tenant) \
            if shard_dir is not None else None
        if tenant_factory is not None:
            runtime = tenant_factory(spec, shard_id, policy, ckpt_dir)
        else:
            runtime = TenantRuntime(
                spec.tenant, shard_id, policy,
                trace=spec.trace, checkpoint_dir=ckpt_dir)
        tenants.append(runtime)
    return ShardRuntime(shard_id, tenants)


class ShardRuntime:
    """One shard: its tenants, a round-robin scheduler, a reporter."""

    def __init__(self, shard_id: int,
                 tenants: Sequence[TenantRuntime]) -> None:
        self.shard_id = shard_id
        self.tenants = sorted(tenants, key=lambda t: t.tenant)
        self.events_consumed = 0
        self.restarts = 0

    @property
    def done(self) -> bool:
        return all(t.done for t in self.tenants)

    @property
    def resumed(self) -> bool:
        return any(t.resumed for t in self.tenants)

    def checkpoints_written(self) -> int:
        return sum(t.manager.written for t in self.tenants
                   if t.manager is not None)

    def step(self, batch_events: int) -> int:
        """One scheduling round: every unfinished tenant advances by
        up to ``batch_events`` — a stuck or budget-shedding tenant
        cannot starve its shard-mates."""
        consumed = 0
        for tenant in self.tenants:
            consumed += tenant.step(batch_events)
        self.events_consumed += consumed
        return consumed

    def finalize(self) -> None:
        for tenant in self.tenants:
            tenant.finalize()

    def report(self, final: bool = False) -> ShardReport:
        digests = [
            TenantDigest.from_snapshot(
                self.shard_id, t.tenant,
                t.finalize() if final else t.latest_snapshot(),
                events_admitted=t.events_admitted,
                events_shed=t.events_shed,
                budget_exhausted=t.budget_exhausted)
            for t in self.tenants
        ]
        return ShardReport(
            shard_id=self.shard_id,
            final=final,
            tenants=digests,
            restarts=self.restarts,
            checkpoints_written=self.checkpoints_written(),
            events_consumed=self.events_consumed,
        )

    def merged_latency(self) -> Histogram:
        """All tenants' ingest-to-snapshot latency folded into one
        shard-level distribution."""
        merged = Histogram(
            "fleet_ingest_to_snapshot_seconds",
            "wall time from event arrival to the snapshot including "
            "it, across every tenant of the shard",
        )
        for tenant in self.tenants:
            merged.merge_from(tenant.pipeline.latency)
        return merged


class FleetService:
    """Single-process fleet over in-process shard runtimes."""

    def __init__(self, config: FleetConfig,
                 tenants: Sequence[TenantSpec],
                 tenant_factory=None,
                 status_path: Optional[str] = None) -> None:
        self.config = config
        self.ring = HashRing(config.shards, config.vnodes)
        self.plan = self.ring.assign(tenants)
        self.shards = [
            build_shard_runtime(shard_id, specs, config.policy,
                                config.workdir,
                                tenant_factory=tenant_factory)
            for shard_id, specs in sorted(self.plan.items())
        ]
        self.aggregator = FleetAggregator(
            sorted(self.plan), config.mailbox_capacity)
        self.status_path = status_path
        self.rounds = 0
        self.latest: Optional[FleetSnapshot] = None

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return all(shard.done for shard in self.shards)

    def tenant_count(self) -> int:
        return sum(len(shard.tenants) for shard in self.shards)

    def _offer_and_merge(self, final: bool) -> FleetSnapshot:
        for shard in self.shards:
            self.aggregator.offer(shard.report(final=final))
        snapshot = self.aggregator.merge(final=final)
        self.latest = snapshot
        if self.status_path is not None:
            write_status(self.status_path, snapshot)
        return snapshot

    def run(self, max_rounds: int = 0,
            on_merge: Optional[Callable[[FleetSnapshot], None]] = None
            ) -> FleetSnapshot:
        """Drive every shard to completion (or ``max_rounds``) and
        return the final fleet snapshot."""
        while not self.done:
            if 0 < max_rounds <= self.rounds:
                break
            for shard in self.shards:
                shard.step(self.config.batch_events)
            self.rounds += 1
            if self.rounds % max(1,
                                 self.config.merge_every_rounds) == 0:
                rolling = self._offer_and_merge(final=False)
                if on_merge is not None:
                    on_merge(rolling)
        for shard in self.shards:
            shard.finalize()
        snapshot = self._offer_and_merge(final=self.done)
        if on_merge is not None:
            on_merge(snapshot)
        return snapshot

    # ------------------------------------------------------------------
    def snapshot_lateness(self) -> Histogram:
        """Fleet-wide ingest-to-snapshot latency (p99 is the bench
        headline number)."""
        merged = Histogram(
            "fleet_ingest_to_snapshot_seconds",
            "wall time from event arrival to the snapshot including "
            "it, across every tenant of the fleet",
        )
        for shard in self.shards:
            merged.merge_from(shard.merged_latency())
        return merged

    def build_registry(self) -> MetricsRegistry:
        """One registry holding fleet-, shard- and tenant-level series
        (the exporter's backing store)."""
        registry = MetricsRegistry()
        snapshot = self.latest
        registry.gauge(
            "fleet_shards",
            "shards the fleet expects reports from",
        ).set(len(self.shards))
        registry.gauge(
            "fleet_tenants",
            "tenants (monitored collectives) across the fleet",
        ).set(self.tenant_count())
        registry.gauge(
            "fleet_merge_seq",
            "sequence number of the newest fleet snapshot",
        ).set(snapshot.seq if snapshot else 0)
        registry.counter(
            "fleet_reports_dropped_total",
            "shard reports shed by bounded aggregation mailboxes",
        ).inc(self.aggregator.dropped_total())
        registry.attach(self.aggregator.merge_seconds)
        registry.attach(self.snapshot_lateness())
        # aggregation-tier operational series (per-shard mailbox
        # drops, transport counters, health when tracked)
        self.aggregator.export_into(registry)

        for shard in self.shards:
            labels = {"shard": str(shard.shard_id)}
            registry.gauge(
                "fleet_shard_tenants",
                "tenants owned by the shard",
                labels=labels).set(len(shard.tenants))
            registry.counter(
                "fleet_shard_events_consumed_total",
                "stream events the shard consumed",
                labels=labels).inc(shard.events_consumed)
            registry.counter(
                "fleet_shard_restarts_total",
                "supervised restarts of the shard worker",
                labels=labels).inc(shard.restarts)
            registry.counter(
                "fleet_shard_checkpoints_written_total",
                "checkpoint snapshots persisted by the shard",
                labels=labels).inc(shard.checkpoints_written())
            shard_latency = shard.merged_latency()
            shard_latency.name = "fleet_shard_ingest_to_snapshot_seconds"
            shard_latency.labels = dict(labels)
            registry.attach(shard_latency)
            for tenant in shard.tenants:
                tlabels = {"shard": str(shard.shard_id),
                           "tenant": tenant.tenant}
                registry.gauge(
                    "fleet_tenant_watermark_ns",
                    "event-time watermark of the tenant pipeline",
                    labels=tlabels).set(
                    _finite(tenant.watermark_ns()))
                registry.counter(
                    "fleet_tenant_events_admitted_total",
                    "events the tenant's budget admitted",
                    labels=tlabels).inc(tenant.events_admitted)
                registry.counter(
                    "fleet_tenant_events_shed_total",
                    "events shed past the tenant's budget",
                    labels=tlabels).inc(tenant.events_shed)
                registry.gauge(
                    "fleet_tenant_budget_exhausted",
                    "1 when the tenant exhausted its event budget",
                    labels=tlabels).set(
                    int(tenant.budget_exhausted))
                registry.gauge(
                    "fleet_tenant_degraded",
                    "1 when the tenant diagnosis runs on incomplete "
                    "telemetry",
                    labels=tlabels).set(
                    int(tenant.pipeline.degradation.degraded))
                registry.gauge(
                    "fleet_tenant_confidence",
                    "telemetry confidence of the tenant diagnosis "
                    "(1.0 = full)",
                    labels=tlabels).set(
                    tenant.pipeline.degradation.confidence())
        return registry


def _finite(value: float) -> float:
    import math

    return 0.0 if math.isinf(value) else value


def registry_from_snapshot(snapshot: FleetSnapshot,
                           dropped_reports: int = 0
                           ) -> MetricsRegistry:
    """Fleet/shard/tenant series rebuilt from a merged snapshot alone.

    The multiprocess serve mode scrapes through this: the exporter
    lives in the parent, shards are separate OS processes, and the
    fleet snapshot (fanned in via report files) is the only shared
    state.  Series names match :meth:`FleetService.build_registry`
    where the underlying quantity is the same.
    """
    registry = MetricsRegistry()
    registry.gauge(
        "fleet_shards",
        "shards the fleet expects reports from",
    ).set(len(snapshot.shards) + len(snapshot.stale_shards))
    registry.gauge(
        "fleet_stale_shards",
        "expected shards missing from the newest merge",
    ).set(len(snapshot.stale_shards))
    registry.gauge(
        "fleet_tenants",
        "tenants (monitored collectives) across the fleet",
    ).set(snapshot.totals["tenants"])
    registry.gauge(
        "fleet_merge_seq",
        "sequence number of the newest fleet snapshot",
    ).set(snapshot.seq)
    registry.gauge(
        "fleet_watermark_ns",
        "fleet event-time watermark (min over shards)",
    ).set(snapshot.watermark_ns
          if snapshot.watermark_ns is not None else 0.0)
    registry.counter(
        "fleet_reports_dropped_total",
        "shard reports shed by bounded aggregation mailboxes",
    ).inc(dropped_reports)
    registry.counter(
        "fleet_restarts_total",
        "supervised shard worker restarts",
    ).inc(snapshot.totals.get("restarts", 0))
    registry.gauge(
        "fleet_degraded",
        "1 when the newest merge excluded health-dead shards from "
        "the fleet watermark",
    ).set(int(snapshot.degraded))
    registry.counter(
        "fleet_publish_failures_total",
        "report publishes shard transport channels gave up on",
    ).inc(snapshot.totals.get("publish_failures", 0))
    registry.counter(
        "fleet_publish_fallbacks_total",
        "reports that fell back to the atomic report file",
    ).inc(snapshot.totals.get("publish_fallbacks", 0))
    registry.counter(
        "fleet_transport_retries_total",
        "transport send/connect retries across the fleet",
    ).inc(snapshot.totals.get("transport_retries", 0))

    by_shard: dict[int, list[TenantDigest]] = {}
    for digest in snapshot.tenants:
        by_shard.setdefault(digest.shard_id, []).append(digest)
    for shard_id in snapshot.shards:
        labels = {"shard": str(shard_id)}
        registry.gauge(
            "fleet_shard_tenants",
            "tenants owned by the shard",
            labels=labels).set(len(by_shard.get(shard_id, [])))
    for digest in snapshot.tenants:
        tlabels = {"shard": str(digest.shard_id),
                   "tenant": digest.tenant}
        registry.gauge(
            "fleet_tenant_watermark_ns",
            "event-time watermark of the tenant pipeline",
            labels=tlabels).set(
            digest.watermark_ns
            if digest.watermark_ns is not None else 0.0)
        registry.counter(
            "fleet_tenant_events_admitted_total",
            "events the tenant's budget admitted",
            labels=tlabels).inc(digest.events_admitted)
        registry.counter(
            "fleet_tenant_events_shed_total",
            "events shed past the tenant's budget",
            labels=tlabels).inc(digest.events_shed)
        registry.gauge(
            "fleet_tenant_budget_exhausted",
            "1 when the tenant exhausted its event budget",
            labels=tlabels).set(int(digest.budget_exhausted))
        registry.gauge(
            "fleet_tenant_degraded",
            "1 when the tenant diagnosis runs on incomplete "
            "telemetry",
            labels=tlabels).set(int(digest.degraded))
        registry.gauge(
            "fleet_tenant_confidence",
            "telemetry confidence of the tenant diagnosis "
            "(1.0 = full)",
            labels=tlabels).set(digest.confidence)
        registry.gauge(
            "fleet_tenant_findings",
            "distinct anomaly finding types in the tenant's newest "
            "diagnosis",
            labels=tlabels).set(len(digest.findings))
    return registry


def write_status(path: str, snapshot: FleetSnapshot) -> None:
    """Atomically publish the newest fleet snapshot as JSON (the
    ``repro fleet status`` data source)."""
    target = os.path.abspath(path)
    directory = os.path.dirname(target) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(snapshot.to_dict(), handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # repro: noqa RPR030 - best-effort tmp cleanup; the original error re-raises below
            pass
        raise


def read_status(path: str) -> Optional[dict]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


def specs_from_plan(plan: dict[int, Iterable[TenantSpec]]
                    ) -> list[TenantSpec]:
    return [spec for _, specs in sorted(plan.items())
            for spec in specs]


__all__ = [
    "FleetConfig",
    "FleetService",
    "ShardRuntime",
    "build_shard_runtime",
    "registry_from_snapshot",
    "write_status",
    "read_status",
    "specs_from_plan",
]
