"""The ``repro bench --fleet`` harness behind ``BENCH_fleet.json``.

The acceptance bar from the fleet issue: sustain **1k+ concurrent
monitored collectives** through the sharded service with a *measured*
p99 snapshot lateness.  One bench run:

1. records a single anomaly trace (flow-contention at bench scale)
   with :class:`~repro.traces.store.TraceRecorder`;
2. decodes it once and fans the event list out to N in-memory tenants
   (every tenant replays its own copy through its own
   :class:`~repro.live.pipeline.LivePipeline` — the concurrency is
   real, the disk I/O is not, so the number measures the diagnosis
   fleet rather than the filesystem);
3. drives the fleet to completion and reports throughput,
   rolling-merge cost, and the fleet-wide ingest-to-snapshot
   lateness distribution (p50/p99/max).

Two execution modes:

* ``process`` (the default) — real supervised worker processes, one
  per shard, streaming reports over the socket transport; each
  worker decodes the trace once (``preload_traces``) so disk I/O
  stays out of the measurement, and ships its lateness histogram
  home inside its final :class:`~repro.fleet.aggregator.ShardReport`;
* ``inprocess`` — the original single-process
  :class:`~repro.fleet.service.FleetService` reference semantics.

Entries append to ``benchmarks/results/BENCH_fleet.json`` in the same
schema-1 trajectory format as ``BENCH_simcore.json``.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro.fleet.service import FleetConfig, FleetService
from repro.fleet.sharding import HashRing, TenantSpec
from repro.fleet.tenancy import TenantPolicy, TenantRuntime
from repro.live.metrics import Histogram

BENCH_SCHEMA_VERSION = 1

#: scenario scale for the bench trace (fast but non-trivial)
BENCH_SCALE = 0.002


def record_bench_trace(out_dir: Path, scenario: str = "flow_contention",
                       scale: float = BENCH_SCALE,
                       seed: int = 42) -> Path:
    """Record one anomaly-scenario trace to replay across the fleet."""
    from repro.anomalies.scenarios import ScenarioConfig, make_cases
    from repro.experiments.harness import make_system
    from repro.traces import TraceRecorder

    config = ScenarioConfig(scale=scale, base_seed=seed)
    case = make_cases(scenario, 1, config)[0]
    network, runtime = case.build_network()
    system = make_system("vedrfolnir")
    system.attach(network, runtime)
    recorder = TraceRecorder.attach(network, runtime)
    runtime.start()
    case.inject(network, runtime)
    network.run_until_quiet(max_time=config.run_deadline_ns())
    system.finalize()
    path = out_dir / f"{scenario}.jsonl"
    recorder.write(path)
    return path


def run_fleet_bench(tenants: int = 1024, shards: int = 8,
                    scenario: str = "flow_contention",
                    scale: float = BENCH_SCALE, seed: int = 42,
                    batch_events: int = 64,
                    merge_every_rounds: int = 4,
                    snapshot_every: int = 32,
                    mode: str = "process") -> dict:
    """One fleet bench measurement (see module docstring)."""
    from repro.traces.stream import merged_events, read_header

    if mode not in ("process", "inprocess"):
        raise ValueError(f"unknown fleet bench mode {mode!r}")
    with tempfile.TemporaryDirectory(
            prefix="repro-fleet-bench-") as root:
        trace = record_bench_trace(Path(root), scenario=scenario,
                                   scale=scale, seed=seed)
        if mode == "process":
            # the trace file must outlive the run: worker processes
            # preload it themselves (decode once per worker)
            return _run_bench_process(
                trace, Path(root), tenants=tenants, shards=shards,
                scenario=scenario, batch_events=batch_events,
                merge_every_rounds=merge_every_rounds,
                snapshot_every=snapshot_every)
        header = read_header(trace)
        events = list(merged_events(trace))

    policy = TenantPolicy(snapshot_every=snapshot_every,
                          checkpoint_every=0)

    def tenant_factory(spec, shard_id, tenant_policy, _ckpt_dir):
        return TenantRuntime(spec.tenant, shard_id, tenant_policy,
                             events=iter(events), header=header)

    specs = [TenantSpec(tenant=f"tenant-{i:04d}", trace=str(trace))
             for i in range(tenants)]
    config = FleetConfig(shards=shards, policy=policy,
                         batch_events=batch_events,
                         merge_every_rounds=merge_every_rounds)
    service = FleetService(config, specs,
                           tenant_factory=tenant_factory)

    start = time.perf_counter()
    final = service.run()
    wall_s = time.perf_counter() - start

    lateness = service.snapshot_lateness()
    merges = service.aggregator.merge_seconds
    events_total = final.totals["events_admitted"] \
        + final.totals["events_shed"]
    shard_sizes = [len(shard.tenants) for shard in service.shards]
    return {
        "mode": "inprocess",
        "tenants": tenants,
        "shards": shards,
        "scenario": scenario,
        "events_per_tenant": len(events),
        "events_total": events_total,
        "wall_s": round(wall_s, 4),
        "events_per_sec": round(events_total / wall_s)
        if wall_s else 0,
        "tenants_finished": final.totals["tenants_final"],
        "fleet_merges": final.seq,
        "merge_p50_s": round(merges.percentile(50), 6),
        "merge_p99_s": round(merges.percentile(99), 6),
        "snapshot_lateness_count": lateness.total,
        "snapshot_lateness_p50_s": round(lateness.percentile(50), 6),
        "snapshot_lateness_p99_s": round(lateness.percentile(99), 6),
        "snapshot_lateness_max_s": round(
            lateness.max if lateness.total else 0.0, 6),
        "shard_tenants_min": min(shard_sizes),
        "shard_tenants_max": max(shard_sizes),
    }


def _run_bench_process(trace: Path, root: Path,
                       tenants: int, shards: int, scenario: str,
                       batch_events: int, merge_every_rounds: int,
                       snapshot_every: int) -> dict:
    """The multiprocess measurement: supervised workers streaming
    reports over the socket transport, lateness histograms shipped
    home inside the final ShardReports."""
    from repro.fleet.transport import run_fleet_streaming
    from repro.traces.stream import merged_events

    events_per_tenant = sum(1 for _ in merged_events(trace))
    policy = TenantPolicy(snapshot_every=snapshot_every,
                          checkpoint_every=0)
    specs = [TenantSpec(tenant=f"tenant-{i:04d}", trace=str(trace))
             for i in range(tenants)]
    config = FleetConfig(shards=shards, policy=policy,
                         batch_events=batch_events,
                         merge_every_rounds=merge_every_rounds)
    plan = HashRing(config.shards, config.vnodes).assign(specs)

    start = time.perf_counter()
    outcome = run_fleet_streaming(
        config, plan, str(root / "reports"),
        report_every_rounds=merge_every_rounds,
        merge_every_s=0.05, preload_traces=True)
    wall_s = time.perf_counter() - start

    final = outcome.final
    merges = outcome.aggregator.merge_seconds
    lateness = Histogram(
        "fleet_ingest_to_snapshot_seconds",
        "wall time from event arrival to the snapshot including it, "
        "across every tenant of the fleet")
    for report in outcome.results.values():
        if report.lateness:
            lateness.merge_from(
                Histogram("shard_lateness").load_state(
                    report.lateness))
    events_total = final.totals["events_admitted"] \
        + final.totals["events_shed"]
    shard_sizes = [len(plan[s]) for s in sorted(plan)]
    return {
        "mode": "process",
        "tenants": tenants,
        "shards": shards,
        "scenario": scenario,
        "events_per_tenant": events_per_tenant,
        "events_total": events_total,
        "wall_s": round(wall_s, 4),
        "events_per_sec": round(events_total / wall_s)
        if wall_s else 0,
        "tenants_finished": final.totals["tenants_final"],
        "fleet_merges": final.seq,
        "merge_p50_s": round(merges.percentile(50), 6),
        "merge_p99_s": round(merges.percentile(99), 6),
        "snapshot_lateness_count": lateness.total,
        "snapshot_lateness_p50_s": round(lateness.percentile(50), 6),
        "snapshot_lateness_p99_s": round(lateness.percentile(99), 6),
        "snapshot_lateness_max_s": round(
            lateness.max if lateness.total else 0.0, 6),
        "shard_tenants_min": min(shard_sizes),
        "shard_tenants_max": max(shard_sizes),
    }


# ----------------------------------------------------------------------
# trajectory file (same schema-1 shape as BENCH_simcore.json)
# ----------------------------------------------------------------------
def load_trajectory(path) -> dict:
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != BENCH_SCHEMA_VERSION:
        raise ValueError(f"unsupported BENCH schema in {path}: "
                         f"{doc.get('schema')!r}")
    return doc


def append_entry(path, entry: dict) -> dict:
    path = Path(path)
    if path.exists():
        doc = load_trajectory(path)
    else:
        doc = {"schema": BENCH_SCHEMA_VERSION, "benchmark": "fleet",
               "scenario": "N in-memory tenants replaying one "
                           "flow-contention trace through the "
                           "sharded fleet service",
               "entries": []}
    doc["entries"].append(entry)
    fd, tmp = tempfile.mkstemp(dir=path.parent or Path("."),
                               suffix=".tmp")
    with os.fdopen(fd, "w") as handle:
        json.dump(doc, handle, indent=1)
        handle.write("\n")
    os.replace(tmp, path)
    return doc


def render_entry(entry: dict) -> str:
    fleet = entry["fleet"]
    mode = fleet.get("mode", "inprocess")
    return "\n".join([
        f"fleet bench '{entry['label']}' [{mode}] "
        f"(python {entry['python']}, {entry['machine']})",
        f"  fleet:    {fleet['tenants']} tenants / "
        f"{fleet['shards']} shards "
        f"({fleet['shard_tenants_min']}-"
        f"{fleet['shard_tenants_max']} per shard), "
        f"{fleet['events_per_tenant']} events each",
        f"  volume:   {fleet['events_total']:,} events in "
        f"{fleet['wall_s']:.3f}s = "
        f"{fleet['events_per_sec']:,} events/sec",
        f"  merges:   {fleet['fleet_merges']} "
        f"(p50 {fleet['merge_p50_s'] * 1e3:.3f}ms, "
        f"p99 {fleet['merge_p99_s'] * 1e3:.3f}ms)",
        f"  lateness: p50 {fleet['snapshot_lateness_p50_s'] * 1e3:.3f}ms, "
        f"p99 {fleet['snapshot_lateness_p99_s'] * 1e3:.3f}ms, "
        f"max {fleet['snapshot_lateness_max_s'] * 1e3:.3f}ms "
        f"over {fleet['snapshot_lateness_count']:,} snapshots",
    ])


def fleet_bench_main(tenants: int = 1024, shards: int = 8,
                     label: str = "dev",
                     out: Optional[str] = None,
                     max_lateness_p99_s: float = 0.0,
                     as_json: bool = False,
                     mode: str = "process") -> int:
    """CLI body for ``repro bench --fleet``.

    ``max_lateness_p99_s`` > 0 turns the measured p99 snapshot
    lateness into a pass/fail gate (exit 1 past the bound).
    """
    entry = {
        "label": label,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": f"{platform.system()}-{platform.machine()}",
        "unix_time": round(time.time(), 1),
        "fleet": run_fleet_bench(tenants=tenants, shards=shards,
                                 mode=mode),
    }
    if as_json:
        print(json.dumps(entry, indent=2))
    else:
        print(render_entry(entry))
    status = 0
    if max_lateness_p99_s > 0:
        p99 = entry["fleet"]["snapshot_lateness_p99_s"]
        if p99 > max_lateness_p99_s:
            print(f"snapshot lateness p99 {p99:.6f}s exceeds bound "
                  f"{max_lateness_p99_s:.6f}s", file=sys.stderr)
            status = 1
        else:
            print(f"snapshot lateness p99 {p99:.6f}s within bound "
                  f"{max_lateness_p99_s:.6f}s")
    if out:
        append_entry(out, entry)
        print(f"trajectory entry appended to {out}")
    return status


__all__ = [
    "record_bench_trace",
    "run_fleet_bench",
    "fleet_bench_main",
    "append_entry",
    "load_trajectory",
    "render_entry",
]
