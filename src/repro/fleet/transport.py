"""Socket report streaming: the fleet's resilient fan-in edge.

Until now the only worker→aggregator channel was "write an atomic
report file, parent polls it".  This module adds a streaming channel
on top — without ever making the file path wrong:

* **Frames.**  Length-prefixed, CRC-checked, sequence-numbered frames
  (``!2sBIQII`` header: magic ``VF``, kind, shard id, sequence,
  payload length, CRC32) carrying either a serialized
  :class:`~repro.fleet.aggregator.ShardReport` or a heartbeat.
* **Worker side.**  :class:`ReportPublisher` connects to the parent's
  listener, reconnecting under a seeded
  :class:`~repro.core.retry.RetryPolicy` with a
  :class:`~repro.core.retry.CircuitBreaker` so a dead listener cannot
  stall the shard.  A report that cannot be delivered falls back to
  the atomic report file — **degraded, never wrong**.
* **Parent side.**  :class:`ReportListener` accepts connections, feeds
  a stateful :class:`FrameDecoder`, drops stale/garbled frames (a
  corrupt stream resets the connection; the publisher reconnects),
  and forwards reports/heartbeats to the aggregator.
* **Orchestration.**  :func:`run_fleet_streaming` runs the supervised
  worker fleet with the socket channel plus a rolling merge loop, and
  always closes over the report *files* for the final fan-in — the
  recovery contract (final diagnosis bit-equal to an uninterrupted
  run) is therefore independent of any streamed frame's fate.

Failpoint sites (see :mod:`repro.core.failpoints`): worker-side
``transport.connect``, ``transport.send``, ``transport.heartbeat``;
parent-side ``transport.recv.drop``, ``transport.recv.garble``,
``transport.conn.reset``.
"""

from __future__ import annotations

import json
import os
import socket
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core import failpoints
from repro.core.retry import CircuitBreaker, RetryPolicy, \
    call_with_retry
from repro.core.units import Seconds
from repro.fleet.aggregator import (
    FleetAggregator,
    FleetSnapshot,
    HealthPolicy,
    ShardReport,
)
from repro.fleet.service import FleetConfig
from repro.fleet.sharding import TenantSpec

MAGIC = b"VF"
KIND_REPORT = 0x52     # 'R'
KIND_HEARTBEAT = 0x48  # 'H'
_HEADER = struct.Struct("!2sBIQII")
HEADER_BYTES = _HEADER.size
#: a report payload larger than this is a framing bug, not data
MAX_PAYLOAD_BYTES = 64 * 1024 * 1024


class FrameError(ValueError):
    """The byte stream is not a valid frame sequence (bad magic,
    impossible length, or CRC mismatch)."""


@dataclass(frozen=True)
class Frame:
    """One decoded transport frame."""

    kind: int
    shard_id: int
    seq: int
    payload: bytes = b""


def encode_frame(kind: int, shard_id: int, seq: int,
                 payload: bytes = b"") -> bytes:
    header = _HEADER.pack(MAGIC, kind, shard_id, seq, len(payload),
                          zlib.crc32(payload))
    return header + payload


def encode_report(report: ShardReport, seq: int) -> bytes:
    payload = json.dumps(report.to_dict(),
                         sort_keys=True).encode("utf-8")
    return encode_frame(KIND_REPORT, report.shard_id, seq, payload)


def decode_report(frame: Frame) -> Optional[ShardReport]:
    """The frame's ShardReport, or None when the payload does not
    parse (a CRC collision or a version-skewed peer)."""
    try:
        return ShardReport.from_dict(json.loads(
            frame.payload.decode("utf-8")))
    except (ValueError, KeyError, UnicodeDecodeError):
        return None


class FrameDecoder:
    """Incremental frame decoder over an arbitrary chunking of the
    byte stream.  Raises :class:`FrameError` on a corrupt prefix —
    the caller should reset the connection (TCP gives no way to
    resynchronize mid-stream)."""

    def __init__(self,
                 max_payload_bytes: int = MAX_PAYLOAD_BYTES) -> None:
        self.max_payload_bytes = max_payload_bytes
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[Frame]:
        self._buffer.extend(data)
        frames: list[Frame] = []
        while len(self._buffer) >= HEADER_BYTES:
            magic, kind, shard_id, seq, length, crc = _HEADER.unpack(
                bytes(self._buffer[:HEADER_BYTES]))
            if magic != MAGIC:
                raise FrameError(f"bad frame magic {magic!r}")
            if length > self.max_payload_bytes:
                raise FrameError(
                    f"frame payload length {length} exceeds "
                    f"{self.max_payload_bytes}")
            if len(self._buffer) < HEADER_BYTES + length:
                break
            payload = bytes(
                self._buffer[HEADER_BYTES:HEADER_BYTES + length])
            if zlib.crc32(payload) != crc:
                raise FrameError(
                    f"frame CRC mismatch (shard {shard_id}, "
                    f"seq {seq})")
            del self._buffer[:HEADER_BYTES + length]
            frames.append(Frame(kind=kind, shard_id=shard_id,
                                seq=seq, payload=payload))
        return frames

    def pending_bytes(self) -> int:
        return len(self._buffer)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
class ReportPublisher:
    """Streams one shard's reports/heartbeats to the listener.

    Send failures reconnect under the retry policy; the breaker stops
    a dead listener from consuming the shard's time budget.  A report
    the channel cannot deliver is the *caller's* cue to fall back to
    the atomic report file (see
    :meth:`worker_main <repro.fleet.worker.worker_main>`).
    """

    def __init__(self, endpoint, shard_id: int,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 connect_timeout_s: Seconds = 2.0,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.host = str(endpoint[0])
        self.port = int(endpoint[1])
        self.shard_id = shard_id
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=3, base_delay_s=0.02, factor=2.0,
            max_delay_s=0.2, seed=shard_id)
        self.breaker = breaker if breaker is not None \
            else CircuitBreaker(failure_threshold=4,
                                reset_after_s=0.5)
        self.connect_timeout_s = connect_timeout_s
        self.sleep = sleep
        self._rng = self.retry.rng()
        self._sock: Optional[socket.socket] = None
        self._seq = 0
        # channel observability (stamped into outgoing ShardReports)
        self.reports_sent = 0
        self.heartbeats_sent = 0
        self.retries = 0
        self.send_failures = 0
        self.fallbacks = 0
        self.frames_dropped = 0

    # ------------------------------------------------------------------
    def _drop_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # repro: noqa RPR030 - closing an already-broken socket; nothing to recover
                pass
            self._sock = None

    def _connect(self) -> None:
        failpoints.fire("transport.connect")
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout_s)
        if sock.getsockname() == sock.getpeername():
            # TCP simultaneous-open to a freed ephemeral port on the
            # same host can connect the socket to itself; "publishing"
            # into it would silently go nowhere, so fail like a
            # refused connection and let retry/fallback take over
            sock.close()
            raise ConnectionRefusedError(
                f"self-connected to {self.host}:{self.port} "
                f"(listener is gone)")
        sock.settimeout(self.connect_timeout_s)
        self._sock = sock

    def _send_frame(self, frame: bytes) -> None:
        if self._sock is None:
            self._connect()
        mangled = failpoints.mangle("transport.send", frame)
        if mangled is None:
            self.frames_dropped += 1
            return
        assert self._sock is not None
        self._sock.sendall(mangled)

    def _on_retry(self, _attempt, _error, _delay_s) -> None:
        self.retries += 1
        self._drop_socket()

    # ------------------------------------------------------------------
    def publish(self, report: ShardReport) -> bool:
        """Stream one report.  True on success; False when the
        channel is broken (caller falls back to the report file)."""
        self._seq += 1
        frame = encode_report(report, self._seq)
        try:
            call_with_retry(lambda: self._send_frame(frame),
                            policy=self.retry, retry_on=(OSError,),
                            breaker=self.breaker, sleep=self.sleep,
                            rng=self._rng, on_retry=self._on_retry)
        except OSError:
            self._drop_socket()
            self.send_failures += 1
            return False
        self.reports_sent += 1
        return True

    def heartbeat(self) -> bool:
        """One best-effort liveness beat (no retries: the next round
        sends another; a few lost beats only age the shard)."""
        if failpoints.fire("transport.heartbeat") == "drop":
            return False  # stalled heartbeat (chaos)
        self._seq += 1
        frame = encode_frame(KIND_HEARTBEAT, self.shard_id, self._seq)
        try:
            self._send_frame(frame)
        except OSError:
            self._drop_socket()
            return False
        self.heartbeats_sent += 1
        return True

    def stamp(self, report: ShardReport) -> ShardReport:
        """Write this channel's operational counters into an outgoing
        report (they surface as labeled exporter series)."""
        report.transport_retries = self.retries
        report.publish_failures = self.send_failures
        report.publish_fallbacks = self.fallbacks
        report.breaker_state = self.breaker.state_code()
        return report

    def close(self) -> None:
        self._drop_socket()

    def __enter__(self) -> "ReportPublisher":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class ReportListener:
    """Accepts worker connections and fans decoded frames into
    caller-supplied callbacks (one daemon thread per connection).

    A garbled stream (failed CRC / magic) resets its connection; the
    publisher's reconnect makes that loss transient.  Reports with a
    non-advancing sequence number on the same connection are dropped
    as stale (a reconnect legitimately restarts the sequence, and the
    aggregator's latest-report-wins merge absorbs duplicates).
    """

    def __init__(self,
                 on_report: Callable[[ShardReport], None],
                 on_heartbeat: Optional[Callable[[int], None]] = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.on_report = on_report
        self.on_heartbeat = on_heartbeat
        self._server = socket.create_server((host, port))
        self.host, self.port = self._server.getsockname()[:2]
        self._lock = threading.Lock()
        self._closing = False
        self._accept_thread: Optional[threading.Thread] = None
        self._conns: set = set()
        # channel observability (read under self._lock)
        self.connections_accepted = 0
        self.connections_reset = 0
        self.frames_received = 0
        self.reports_received = 0
        self.heartbeats_received = 0
        self.frames_garbled = 0
        self.chunks_dropped = 0
        self.reports_stale = 0
        self.reports_bad = 0

    def endpoint(self) -> list:
        """``[host, port]`` — primitives, safe inside worker specs."""
        return [self.host, int(self.port)]

    def stats(self) -> dict:
        with self._lock:
            return {
                "connections_accepted": self.connections_accepted,
                "connections_reset": self.connections_reset,
                "frames_received": self.frames_received,
                "reports_received": self.reports_received,
                "heartbeats_received": self.heartbeats_received,
                "frames_garbled": self.frames_garbled,
                "chunks_dropped": self.chunks_dropped,
                "reports_stale": self.reports_stale,
                "reports_bad": self.reports_bad,
            }

    # ------------------------------------------------------------------
    def start(self) -> int:
        if self._accept_thread is None:
            self._accept_thread = threading.Thread(
                target=self._accept_loop,
                name="fleet-report-listener", daemon=True)
            self._accept_thread.start()
        return self.port

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, _addr = self._server.accept()
            except OSError:
                return  # listener closed
            with self._lock:
                if self._closing:
                    conn.close()
                    return
                self.connections_accepted += 1
                self._conns.add(conn)
            worker = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="fleet-report-conn", daemon=True)
            worker.start()

    def _serve_connection(self, conn) -> None:
        decoder = FrameDecoder()
        last_report_seq = -1
        try:
            while True:
                try:
                    data = conn.recv(65536)
                except OSError:
                    break
                if not data:
                    break
                data = failpoints.mangle("transport.recv.drop", data)
                if data is None:
                    with self._lock:
                        self.chunks_dropped += 1
                    continue
                data = failpoints.mangle("transport.recv.garble",
                                         data)
                if failpoints.fire("transport.conn.reset") is not None:
                    with self._lock:
                        self.connections_reset += 1
                    break
                try:
                    frames = decoder.feed(data)
                except FrameError:
                    # corrupt prefix: count it and reset the
                    # connection (the publisher reconnects clean)
                    with self._lock:
                        self.frames_garbled += 1
                        self.connections_reset += 1
                    break
                for frame in frames:
                    last_report_seq = self._dispatch(
                        frame, last_report_seq)
        finally:
            with self._lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:  # repro: noqa RPR030 - peer already gone; nothing to release twice
                pass

    def _dispatch(self, frame: Frame, last_report_seq: int) -> int:
        with self._lock:
            self.frames_received += 1
        if frame.kind == KIND_HEARTBEAT:
            with self._lock:
                self.heartbeats_received += 1
            if self.on_heartbeat is not None:
                self.on_heartbeat(frame.shard_id)
            return last_report_seq
        if frame.seq <= last_report_seq:
            with self._lock:
                self.reports_stale += 1
            return last_report_seq
        report = decode_report(frame)
        if report is None:
            with self._lock:
                self.reports_bad += 1
            return last_report_seq
        try:
            self.on_report(report)
        except ValueError:
            # e.g. a report for a shard the aggregator does not
            # expect — count it instead of killing the connection
            with self._lock:
                self.reports_bad += 1
            return last_report_seq
        with self._lock:
            self.reports_received += 1
        return frame.seq

    # ------------------------------------------------------------------
    def stop(self) -> None:
        with self._lock:
            self._closing = True
            conns = list(self._conns)
        try:
            self._server.close()
        except OSError:  # repro: noqa RPR030 - listener socket already torn down
            pass
        for conn in conns:
            try:
                conn.close()
            except OSError:  # repro: noqa RPR030 - racing the connection thread's own close
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None

    def __enter__(self) -> "ReportListener":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()


# ----------------------------------------------------------------------
# orchestration: supervised workers + streaming fan-in + health
# ----------------------------------------------------------------------
@dataclass
class FleetStreamOutcome:
    """What :func:`run_fleet_streaming` hands back."""

    #: final per-shard reports (from the atomic report files)
    results: dict
    #: final fleet snapshot (merged after every worker completed)
    final: FleetSnapshot
    #: the live aggregator (health, mailboxes, degraded counters)
    aggregator: FleetAggregator
    #: receive-side channel counters (:meth:`ReportListener.stats`)
    transport: dict = field(default_factory=dict)
    #: rolling snapshots that carried a degraded flag
    degraded_snapshots: int = 0


def run_fleet_streaming(
        config: FleetConfig,
        plan: dict[int, list[TenantSpec]],
        report_dir: str,
        health: Optional[HealthPolicy] = None,
        hang_at: Optional[dict[int, int]] = None,
        policy=None,
        on_crash=None,
        on_merge: Optional[Callable[[FleetSnapshot], None]] = None,
        merge_every_s: Seconds = 0.1,
        report_every_rounds: int = 8,
        heartbeat_every_rounds: int = 1,
        worker_failpoints: str = "",
        failpoint_seed: int = 0,
        preload_traces: bool = False,
        aggregator: Optional[FleetAggregator] = None,
) -> FleetStreamOutcome:
    """Run every shard of ``plan`` as a supervised worker process
    streaming reports/heartbeats back over one socket listener, while
    a rolling merge loop publishes health-aware fleet snapshots.

    The final fan-in reads the atomic report *files* (which workers
    always write), so the final snapshot is bit-equal to a run with
    no streaming at all — streamed frames only make rolling
    snapshots fresher, never the final diagnosis different.
    """
    from repro.fleet.worker import make_shard_spec, \
        run_fleet_supervised

    os.makedirs(report_dir, exist_ok=True)
    hang_at = hang_at or {}
    health = health if health is not None else HealthPolicy()
    if not failpoints.active():
        # honor REPRO_FAILPOINTS for the parent-side sites
        # (transport.recv.*, transport.conn.reset); a programmatic
        # configure() — e.g. the chaos harness — takes precedence
        failpoints.configure_from_env(seed=failpoint_seed)
    if aggregator is None:
        aggregator = FleetAggregator(sorted(plan),
                                     config.mailbox_capacity,
                                     health=health)
    agg_lock = threading.Lock()

    def offer(report: ShardReport) -> None:
        with agg_lock:
            aggregator.offer(report)

    def beat(shard_id: int) -> None:
        with agg_lock:
            aggregator.heartbeat(shard_id)

    listener = ReportListener(on_report=offer, on_heartbeat=beat)
    listener.start()
    done = threading.Event()

    def merge_loop() -> None:
        while not done.wait(merge_every_s):
            with agg_lock:
                snapshot = aggregator.merge()
            if on_merge is not None:
                on_merge(snapshot)

    merger = threading.Thread(target=merge_loop,
                              name="fleet-merge-loop", daemon=True)
    merger.start()
    try:
        specs = {
            shard_id: make_shard_spec(
                config, shard_id, tenant_specs,
                os.path.join(report_dir,
                             f"shard-{shard_id:03d}.json"),
                hang_at=hang_at.get(shard_id, 0),
                report_every_rounds=report_every_rounds,
                endpoint=listener.endpoint(),
                heartbeat_every_rounds=heartbeat_every_rounds,
                worker_failpoints=worker_failpoints,
                failpoint_seed=failpoint_seed,
                preload_traces=preload_traces)
            for shard_id, tenant_specs in sorted(plan.items())
        }
        results = run_fleet_supervised(specs, policy=policy,
                                       on_crash=on_crash)
    finally:
        done.set()
        merger.join(timeout=5.0)
        listener.stop()

    with agg_lock:
        for report in results.values():
            aggregator.offer(report)
        final = aggregator.merge(final=True)
        degraded = aggregator.degraded_snapshots
    if on_merge is not None:
        on_merge(final)
    return FleetStreamOutcome(
        results=results, final=final, aggregator=aggregator,
        transport=listener.stats(), degraded_snapshots=degraded)


__all__ = [
    "MAGIC",
    "KIND_REPORT",
    "KIND_HEARTBEAT",
    "HEADER_BYTES",
    "Frame",
    "FrameError",
    "FrameDecoder",
    "encode_frame",
    "encode_report",
    "decode_report",
    "ReportPublisher",
    "ReportListener",
    "FleetStreamOutcome",
    "run_fleet_streaming",
]
