"""Per-tenant isolation: event budgets, quarantine, bounded buses.

A fleet's availability story is per-tenant: one collective emitting a
pathological event volume must degrade *its own* diagnosis, never its
shard-mates'.  Three mechanisms, all deterministic:

* **event budgets** — a tenant admits at most ``event_budget`` stream
  events; past that the replay still advances the cursor (so resume
  cursors stay correct) but events are shed before the pipeline.
  Admission depends only on the event's position in the tenant's
  stream, so an interrupted-and-resumed replay sheds exactly the same
  events as an uninterrupted one — the fleet recovery contract holds
  under budgets too;
* **quarantine** — a budget-exhausted tenant is flagged
  (``budget_exhausted``) and surfaced in every fleet snapshot and the
  ``/metrics`` export; its pipeline keeps serving whatever was
  admitted;
* **bounded buses** — each tenant pipeline keeps its own bounded
  :class:`~repro.live.bus.EventBus`; a noisy tenant can fill only its
  own queue.

Degradation (missing switch telemetry) stays per-tenant as well: each
pipeline owns a :class:`~repro.live.robustness.DegradationTracker`,
and its ``degraded``/``confidence`` land in the tenant's digest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.live.checkpoint import (
    CheckpointManager,
    CheckpointPolicy,
    TraceReplayer,
    resume_or_create,
)
from repro.live.pipeline import DiagnosisSnapshot, PipelineConfig
from repro.traces import trace_events
from repro.traces.stream import TraceEvent, read_header


@dataclass
class TenantPolicy:
    """Isolation knobs applied to every tenant of a fleet."""

    #: stream events a tenant may admit; 0 = unlimited
    event_budget: int = 0
    #: per-tenant bus bound (events); <= 0 = unbounded
    bus_capacity: int = 4096
    #: rolling-snapshot cadence of each tenant pipeline
    snapshot_every: int = 32
    #: checkpoint cadence in published events (0 disables durability)
    checkpoint_every: int = 64
    #: checkpoint snapshots retained per tenant
    checkpoint_retain: int = 3

    def pipeline_config(self) -> PipelineConfig:
        return PipelineConfig(queue_capacity=self.bus_capacity,
                              snapshot_every=self.snapshot_every)

    def checkpoint_policy(self) -> CheckpointPolicy:
        return CheckpointPolicy(
            interval_events=max(1, self.checkpoint_every),
            max_unflushed_events=max(256, 4 * self.checkpoint_every),
            retain=self.checkpoint_retain)

    def to_dict(self) -> dict:
        return {
            "event_budget": self.event_budget,
            "bus_capacity": self.bus_capacity,
            "snapshot_every": self.snapshot_every,
            "checkpoint_every": self.checkpoint_every,
            "checkpoint_retain": self.checkpoint_retain,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TenantPolicy":
        return cls(**{key: int(data[key]) for key in (
            "event_budget", "bus_capacity", "snapshot_every",
            "checkpoint_every", "checkpoint_retain")})


class TenantRuntime:
    """One tenant's replay: pipeline + cursor + budget + checkpoints.

    ``events`` defaults to the tenant's trace stream resumed at the
    checkpoint cursor; in-memory fleets (the benchmark) inject a
    pre-decoded event list instead.
    """

    def __init__(self, tenant: str, shard_id: int,
                 policy: TenantPolicy,
                 trace: Optional[str] = None,
                 checkpoint_dir: Optional[str] = None,
                 events: Optional[Iterator[TraceEvent]] = None,
                 header=None) -> None:
        self.tenant = tenant
        self.shard_id = shard_id
        self.policy = policy
        self.trace = trace
        if header is None:
            if trace is None:
                raise ValueError(
                    f"tenant {tenant!r} needs a trace or a header")
            header = read_header(trace)
        self.header = header

        manager = None
        if checkpoint_dir is not None and policy.checkpoint_every > 0:
            manager = CheckpointManager(checkpoint_dir,
                                        policy.checkpoint_policy())
        self.manager = manager
        pipeline, cursor, self.resumed = resume_or_create(
            header, manager, config=policy.pipeline_config())
        self.pipeline = pipeline

        if events is None:
            if trace is None:
                raise ValueError(
                    f"tenant {tenant!r} needs a trace or an event "
                    f"iterator")
            events = trace_events(
                trace, on_error=self._quarantine_line,
                cursor=cursor)
        self.replayer = TraceReplayer(
            pipeline, events, manager, cursor, admit=self._admit)
        self.final: Optional[DiagnosisSnapshot] = None

    # ------------------------------------------------------------------
    def _quarantine_line(self, line_no: int, reason: str,
                         snippet: str) -> None:
        self.pipeline.quarantine.admit(line_no, reason, snippet)

    def _admit(self, published: int, _event: TraceEvent) -> bool:
        budget = self.policy.event_budget
        return budget <= 0 or published <= budget

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.final is not None or self.replayer.done

    @property
    def events_admitted(self) -> int:
        budget = self.policy.event_budget
        published = self.replayer.cursor.published
        return published if budget <= 0 else min(published, budget)

    @property
    def events_shed(self) -> int:
        return self.replayer.cursor.published - self.events_admitted

    @property
    def budget_exhausted(self) -> bool:
        budget = self.policy.event_budget
        return budget > 0 and self.replayer.cursor.published >= budget

    def watermark_ns(self) -> float:
        return self.pipeline.watermark.watermark

    def latest_snapshot(self) -> DiagnosisSnapshot:
        """The freshest diagnosis available without finishing: the
        final snapshot if finalized, else the last rolling snapshot,
        else one emitted on demand."""
        if self.final is not None:
            return self.final
        if self.pipeline.snapshots:
            return self.pipeline.snapshots[-1]
        return self.pipeline.emit_snapshot(final=False)

    # ------------------------------------------------------------------
    def step(self, max_events: int) -> int:
        """Advance this tenant's replay by up to ``max_events``."""
        if self.done:
            return 0
        return self.replayer.step(max_events)

    def finalize(self) -> DiagnosisSnapshot:
        """Flush the final checkpoint and emit the final snapshot
        (idempotent)."""
        if self.final is None:
            self.final = self.replayer.finalize()
        return self.final


__all__ = ["TenantPolicy", "TenantRuntime"]
