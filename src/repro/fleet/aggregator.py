"""Fan-in aggregation: per-shard reports merged into fleet snapshots.

The merge is a *pure, deterministic* function of its inputs:

* tenants are ordered by ``(shard_id, tenant)`` — the shard id is the
  tie-break for any cross-shard ordering decision, so two merges over
  the same reports produce byte-identical output regardless of
  arrival order;
* the fleet watermark is the **minimum** over the reporting shards'
  watermarks (each shard's watermark is the minimum over its tenants)
  — the fleet never claims event-time progress a straggler has not
  reached;
* totals are plain sums over tenant digests.

Shard reports arrive through bounded :class:`ShardMailbox`\\ es
(drop-oldest): a slow or dead shard can stale *its own* tenants'
entries in the fleet snapshot (it appears in ``stale_shards``) but
never blocks the other shards' fan-in.

With a :class:`HealthPolicy` the aggregator also tracks per-shard
*liveness* from report/heartbeat arrival times: a shard unheard-of
past ``stale_after_s`` is ``stale``, past ``dead_after_s`` it is
``dead`` and excluded from the fleet watermark — the snapshot keeps
flowing, flagged ``degraded``, instead of stalling behind a corpse
(**degraded, never wrong**: the dead shard's tenants still appear
with their last-known digests).
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.units import Seconds
from repro.live.metrics import Histogram, MetricsRegistry
from repro.live.pipeline import DiagnosisSnapshot


def _json_time(value: float) -> Optional[float]:
    """inf/-inf watermarks (nothing seen yet) are not valid JSON."""
    if math.isinf(value):
        return None
    return value


@dataclass(frozen=True)
class TenantDigest:
    """The fleet-visible summary of one tenant's latest snapshot."""

    shard_id: int
    tenant: str
    final: bool
    seq: int
    watermark_ns: Optional[float]
    step_records: int
    switch_reports: int
    confidence: float
    degraded: bool
    findings: tuple[str, ...]
    top_contributor: Optional[str]
    top_score: float
    events_admitted: int
    events_shed: int
    budget_exhausted: bool
    snapshot_digest: str

    @classmethod
    def from_snapshot(cls, shard_id: int, tenant: str,
                      snapshot: DiagnosisSnapshot,
                      events_admitted: int = 0,
                      events_shed: int = 0,
                      budget_exhausted: bool = False
                      ) -> "TenantDigest":
        ranked = snapshot.top_contributors(1)
        top_flow, top_score = (ranked[0][0].short(), ranked[0][1]) \
            if ranked and ranked[0][1] > 0 else (None, 0.0)
        digest = hashlib.sha256(
            snapshot.canonical_json().encode("utf-8")).hexdigest()
        return cls(
            shard_id=shard_id,
            tenant=tenant,
            final=snapshot.final,
            seq=snapshot.seq,
            watermark_ns=_json_time(snapshot.watermark_ns),
            step_records=snapshot.step_records_ingested,
            switch_reports=snapshot.switch_reports_ingested,
            confidence=snapshot.confidence,
            degraded=snapshot.degraded,
            findings=tuple(sorted({f.type.value
                                   for f in snapshot.result.findings})),
            top_contributor=top_flow,
            top_score=top_score,
            events_admitted=events_admitted,
            events_shed=events_shed,
            budget_exhausted=budget_exhausted,
            snapshot_digest=digest,
        )

    def to_dict(self) -> dict:
        return {
            "shard": self.shard_id,
            "tenant": self.tenant,
            "final": self.final,
            "seq": self.seq,
            "watermark_ns": self.watermark_ns,
            "step_records": self.step_records,
            "switch_reports": self.switch_reports,
            "confidence": self.confidence,
            "degraded": self.degraded,
            "findings": list(self.findings),
            "top_contributor": self.top_contributor,
            "top_score": self.top_score,
            "events_admitted": self.events_admitted,
            "events_shed": self.events_shed,
            "budget_exhausted": self.budget_exhausted,
            "snapshot_digest": self.snapshot_digest,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TenantDigest":
        return cls(
            shard_id=int(data["shard"]),
            tenant=str(data["tenant"]),
            final=bool(data["final"]),
            seq=int(data["seq"]),
            watermark_ns=None if data["watermark_ns"] is None
            else float(data["watermark_ns"]),
            step_records=int(data["step_records"]),
            switch_reports=int(data["switch_reports"]),
            confidence=float(data["confidence"]),
            degraded=bool(data["degraded"]),
            findings=tuple(str(f) for f in data["findings"]),
            top_contributor=data["top_contributor"],
            top_score=float(data["top_score"]),
            events_admitted=int(data["events_admitted"]),
            events_shed=int(data["events_shed"]),
            budget_exhausted=bool(data["budget_exhausted"]),
            snapshot_digest=str(data["snapshot_digest"]),
        )


@dataclass(frozen=True)
class HealthPolicy:
    """Staleness/death thresholds for per-shard liveness tracking.

    Ages are measured since the shard's last report *or* heartbeat.
    A ``dead`` shard is excluded from the fleet watermark (after this
    grace it must not hold event-time progress hostage); a ``stale``
    one is only flagged.
    """

    #: unheard-of this long -> reported ``stale``
    stale_after_s: Seconds = 2.0
    #: unheard-of this long -> ``dead``: excluded from the watermark
    dead_after_s: Seconds = 10.0

    def classify(self, age_s: Seconds) -> str:
        if age_s >= self.dead_after_s:
            return "dead"
        if age_s >= self.stale_after_s:
            return "stale"
        return "live"


@dataclass
class ShardReport:
    """One shard's contribution to a fleet merge."""

    shard_id: int
    final: bool
    tenants: list[TenantDigest] = field(default_factory=list)
    restarts: int = 0
    checkpoints_written: int = 0
    events_consumed: int = 0
    # transport-channel observability (stamped by the worker's
    # ReportPublisher; operational — never part of the diagnosis)
    publish_failures: int = 0
    publish_fallbacks: int = 0
    transport_retries: int = 0
    breaker_state: int = 0
    #: optional serialized lateness Histogram state (process-mode
    #: bench carries ingest-to-snapshot latency home through this)
    lateness: Optional[dict] = None

    @property
    def watermark_ns(self) -> Optional[float]:
        """Min over the shard's tenants; None when nothing reported."""
        marks = [t.watermark_ns for t in self.tenants
                 if t.watermark_ns is not None]
        if not marks or len(marks) < len(self.tenants):
            return None
        return min(marks)

    def to_dict(self) -> dict:
        return {
            "shard": self.shard_id,
            "final": self.final,
            "watermark_ns": self.watermark_ns,
            "restarts": self.restarts,
            "checkpoints_written": self.checkpoints_written,
            "events_consumed": self.events_consumed,
            "publish_failures": self.publish_failures,
            "publish_fallbacks": self.publish_fallbacks,
            "transport_retries": self.transport_retries,
            "breaker_state": self.breaker_state,
            "lateness": self.lateness,
            "tenants": [t.to_dict()
                        for t in sorted(self.tenants,
                                        key=lambda t: t.tenant)],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardReport":
        return cls(
            shard_id=int(data["shard"]),
            final=bool(data["final"]),
            tenants=[TenantDigest.from_dict(t)
                     for t in data["tenants"]],
            restarts=int(data.get("restarts", 0)),
            checkpoints_written=int(
                data.get("checkpoints_written", 0)),
            events_consumed=int(data.get("events_consumed", 0)),
            publish_failures=int(data.get("publish_failures", 0)),
            publish_fallbacks=int(data.get("publish_fallbacks", 0)),
            transport_retries=int(data.get("transport_retries", 0)),
            breaker_state=int(data.get("breaker_state", 0)),
            lateness=data.get("lateness"),
        )


@dataclass
class FleetSnapshot:
    """One deterministic fleet-level merge of per-shard reports."""

    seq: int
    final: bool
    watermark_ns: Optional[float]
    shards: list[int]
    stale_shards: list[int]
    tenants: list[TenantDigest]
    totals: dict
    #: per-shard liveness ("live" / "stale" / "dead"), keyed by the
    #: shard id as a string (JSON object keys); empty without a
    #: HealthPolicy — zero behavior change for health-blind callers
    shard_health: dict = field(default_factory=dict)
    #: True when this merge excluded dead shards from the watermark
    degraded: bool = False

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "final": self.final,
            "watermark_ns": self.watermark_ns,
            "shards": list(self.shards),
            "stale_shards": list(self.stale_shards),
            "shard_health": dict(self.shard_health),
            "degraded": self.degraded,
            "totals": dict(self.totals),
            "tenants": [t.to_dict() for t in self.tenants],
        }

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    def digest(self) -> str:
        return hashlib.sha256(
            self.canonical_json().encode("utf-8")).hexdigest()

    #: totals that describe fleet *operations*, not the diagnosis —
    #: a crashed-and-resumed fleet legitimately differs here
    OPERATIONAL_KEYS = ("restarts", "checkpoints_written",
                        "publish_failures", "publish_fallbacks",
                        "transport_retries")

    def diagnosis_dict(self) -> dict:
        """:meth:`to_dict` minus operational fields (merge count,
        restart/checkpoint/transport totals, liveness).  This is the
        form the fleet recovery contract compares bit-for-bit: a
        fleet that was SIGKILLed and resumed — or that streamed its
        reports over a faulty socket — must match an uninterrupted
        in-process one here, while its restart/retry counters and
        health map may not."""
        data = self.to_dict()
        data.pop("seq", None)
        data.pop("shard_health", None)
        data.pop("degraded", None)
        for key in self.OPERATIONAL_KEYS:
            data["totals"].pop(key, None)
        return data

    def diagnosis_json(self) -> str:
        return json.dumps(self.diagnosis_dict(), sort_keys=True)

    def diagnosis_digest(self) -> str:
        return hashlib.sha256(
            self.diagnosis_json().encode("utf-8")).hexdigest()

    def summary_line(self) -> str:
        tag = "FINAL" if self.final else f"#{self.seq}"
        wm = "-" if self.watermark_ns is None \
            else f"{self.watermark_ns / 1e6:.3f}ms"
        degraded = self.totals["tenants_degraded"]
        anomalous = self.totals["tenants_with_findings"]
        stale = f" stale={self.stale_shards}" if self.stale_shards \
            else ""
        mode = " DEGRADED" if self.degraded else ""
        return (f"[{tag}] fleet wm={wm} "
                f"shards={len(self.shards)} "
                f"tenants={len(self.tenants)} "
                f"anomalous={anomalous} degraded={degraded}"
                f"{stale}{mode}")


def merge_reports(reports: Iterable[ShardReport],
                  expected_shards: Iterable[int],
                  seq: int = 0, final: bool = False,
                  dead_shards: Iterable[int] = (),
                  shard_health: Optional[dict] = None
                  ) -> FleetSnapshot:
    """The deterministic fan-in merge (see module docstring).

    ``expected_shards`` lists every shard the fleet should hear from;
    expected shards with no report land in ``stale_shards``.
    ``dead_shards`` (health-dead past the grace period) keep their
    tenants' last-known digests in the snapshot but are excluded from
    the fleet watermark; a merge that excluded any is ``degraded``.
    """
    by_shard: dict[int, ShardReport] = {}
    for report in reports:
        held = by_shard.get(report.shard_id)
        # latest report per shard wins; ties break on shard id order
        # by construction (one mailbox per shard)
        if held is None or report.events_consumed \
                >= held.events_consumed:
            by_shard[report.shard_id] = report
    expected = sorted(set(expected_shards))
    present = [s for s in expected if s in by_shard]
    stale = [s for s in expected if s not in by_shard]

    tenants: list[TenantDigest] = []
    for shard_id in present:
        tenants.extend(sorted(by_shard[shard_id].tenants,
                              key=lambda t: (t.shard_id, t.tenant)))
    tenants.sort(key=lambda t: (t.shard_id, t.tenant))

    # a shard with no tenants owns no stream, so it cannot hold the
    # fleet watermark back; a shard whose tenants have not produced a
    # watermark yet does (None stays None until every stream starts);
    # a dead shard stops counting after the grace period — the fleet
    # watermark may then run ahead of its last-known digests
    dead = set(dead_shards)
    marks = [by_shard[s].watermark_ns for s in present
             if by_shard[s].tenants and s not in dead]
    watermark = None
    if marks and all(m is not None for m in marks):
        watermark = min(marks)

    totals = {
        "tenants": len(tenants),
        "tenants_final": sum(1 for t in tenants if t.final),
        "tenants_degraded": sum(1 for t in tenants if t.degraded),
        "tenants_with_findings": sum(1 for t in tenants
                                     if t.findings),
        "tenants_budget_exhausted": sum(
            1 for t in tenants if t.budget_exhausted),
        "step_records": sum(t.step_records for t in tenants),
        "switch_reports": sum(t.switch_reports for t in tenants),
        "events_admitted": sum(t.events_admitted for t in tenants),
        "events_shed": sum(t.events_shed for t in tenants),
        "restarts": sum(by_shard[s].restarts for s in present),
        "checkpoints_written": sum(by_shard[s].checkpoints_written
                                   for s in present),
        "publish_failures": sum(by_shard[s].publish_failures
                                for s in present),
        "publish_fallbacks": sum(by_shard[s].publish_fallbacks
                                 for s in present),
        "transport_retries": sum(by_shard[s].transport_retries
                                 for s in present),
    }
    return FleetSnapshot(
        seq=seq,
        final=final,
        watermark_ns=watermark,
        shards=present,
        stale_shards=stale,
        tenants=tenants,
        totals=totals,
        shard_health=dict(shard_health or {}),
        degraded=bool(dead & set(expected)),
    )


class ShardMailbox:
    """Bounded drop-oldest queue of one shard's reports."""

    def __init__(self, capacity: int = 4) -> None:
        self.capacity = max(1, capacity)
        self._queue: deque[ShardReport] = deque()
        self.offered = 0
        self.dropped = 0

    def offer(self, report: ShardReport) -> None:
        self.offered += 1
        if len(self._queue) >= self.capacity:
            self._queue.popleft()
            self.dropped += 1
        self._queue.append(report)

    def latest(self) -> Optional[ShardReport]:
        return self._queue[-1] if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)


class FleetAggregator:
    """Holds one mailbox per shard and produces fleet snapshots.

    With a :class:`HealthPolicy` it also tracks per-shard liveness
    from :meth:`offer` / :meth:`heartbeat` arrival times; merges then
    carry the health map, exclude dead shards from the watermark and
    flag themselves ``degraded``.  Without one (``health=None``,
    the default) nothing changes — health-blind callers get the
    exact merges they always did.
    """

    def __init__(self, expected_shards: Iterable[int],
                 mailbox_capacity: int = 4,
                 health: Optional[HealthPolicy] = None,
                 clock=time.monotonic) -> None:
        self.expected = sorted(set(expected_shards))
        self.mailboxes = {shard: ShardMailbox(mailbox_capacity)
                          for shard in self.expected}
        self._seq = 0
        self.health = health
        self.clock = clock
        self._started_at = clock()
        self._last_seen: dict[int, float] = {}
        self.heartbeats = 0
        self.degraded_snapshots = 0
        self.merge_seconds = Histogram(
            "fleet_merge_seconds",
            "wall time to merge per-shard reports into one fleet "
            "snapshot")

    def offer(self, report: ShardReport) -> None:
        mailbox = self.mailboxes.get(report.shard_id)
        if mailbox is None:
            raise ValueError(
                f"report from unknown shard {report.shard_id}")
        mailbox.offer(report)
        self._last_seen[report.shard_id] = self.clock()

    def heartbeat(self, shard_id: int) -> None:
        """A liveness beat from a shard (no report attached)."""
        if shard_id not in self.mailboxes:
            raise ValueError(
                f"heartbeat from unknown shard {shard_id}")
        self.heartbeats += 1
        self._last_seen[shard_id] = self.clock()

    def last_seen_age_s(self, shard_id: int) -> float:
        """Seconds since the shard's last report or heartbeat (a
        never-heard-of shard ages from aggregator construction)."""
        seen = self._last_seen.get(shard_id, self._started_at)
        return max(0.0, self.clock() - seen)

    def shard_health(self) -> dict[int, str]:
        """Per-shard liveness now; empty without a health policy."""
        if self.health is None:
            return {}
        return {shard: self.health.classify(
            self.last_seen_age_s(shard)) for shard in self.expected}

    def merge(self, final: bool = False,
              clock=None) -> FleetSnapshot:
        """Merge the freshest report per shard; never blocks on a
        shard whose mailbox is empty (it is reported stale) or on a
        health-dead shard (excluded from the watermark; the snapshot
        goes out ``degraded`` instead of late)."""
        import time as _time

        clock = clock or _time.perf_counter
        start = clock()
        self._seq += 1
        health = self.shard_health()
        dead = [shard for shard, state in sorted(health.items())
                if state == "dead"]
        reports = [box.latest() for box in self.mailboxes.values()]
        snapshot = merge_reports(
            [r for r in reports if r is not None],
            self.expected, seq=self._seq, final=final,
            dead_shards=dead,
            shard_health={str(shard): state
                          for shard, state in sorted(health.items())})
        if snapshot.degraded:
            self.degraded_snapshots += 1
        self.merge_seconds.observe(max(0.0, clock() - start))
        return snapshot

    def dropped_total(self) -> int:
        return sum(box.dropped for box in self.mailboxes.values())

    # ------------------------------------------------------------------
    def export_into(self, registry: MetricsRegistry
                    ) -> MetricsRegistry:
        """Aggregation-tier operational series: per-shard mailbox
        drops, transport counters from the freshest reports, breaker
        state, heartbeat ages and liveness codes.  Distinct names
        from the snapshot-level series, so both can share a registry.
        """
        health = self.shard_health()
        registry.counter(
            "fleet_heartbeats_total",
            "shard liveness heartbeats received",
        ).inc(self.heartbeats)
        registry.counter(
            "fleet_degraded_snapshots_total",
            "rolling merges that excluded health-dead shards",
        ).inc(self.degraded_snapshots)
        for shard in self.expected:
            labels = {"shard": str(shard)}
            box = self.mailboxes[shard]
            registry.counter(
                "fleet_shard_reports_offered_total",
                "reports offered to the shard's bounded mailbox",
                labels=labels).inc(box.offered)
            registry.counter(
                "fleet_shard_reports_dropped_total",
                "reports shed (drop-oldest) by the shard's bounded "
                "mailbox",
                labels=labels).inc(box.dropped)
            report = box.latest()
            registry.counter(
                "fleet_shard_publish_failures_total",
                "report publishes the shard's transport channel "
                "gave up on",
                labels=labels).inc(
                report.publish_failures if report else 0)
            registry.counter(
                "fleet_shard_publish_fallbacks_total",
                "reports the shard fell back to the atomic report "
                "file for",
                labels=labels).inc(
                report.publish_fallbacks if report else 0)
            registry.counter(
                "fleet_shard_transport_retries_total",
                "transport send/connect retries by the shard's "
                "publisher",
                labels=labels).inc(
                report.transport_retries if report else 0)
            registry.gauge(
                "fleet_shard_breaker_state",
                "shard publisher circuit breaker (0 closed, "
                "1 half-open, 2 open)",
                labels=labels).set(
                report.breaker_state if report else 0)
            if self.health is not None:
                registry.gauge(
                    "fleet_shard_heartbeat_age_seconds",
                    "seconds since the shard's last report or "
                    "heartbeat",
                    labels=labels).set(
                    round(self.last_seen_age_s(shard), 6))
                registry.gauge(
                    "fleet_shard_health",
                    "shard liveness (0 live, 1 stale, 2 dead)",
                    labels=labels).set(
                    {"live": 0, "stale": 1, "dead": 2}[health[shard]])
        return registry


__all__ = [
    "TenantDigest",
    "HealthPolicy",
    "ShardReport",
    "FleetSnapshot",
    "ShardMailbox",
    "FleetAggregator",
    "merge_reports",
]
