"""Fan-in aggregation: per-shard reports merged into fleet snapshots.

The merge is a *pure, deterministic* function of its inputs:

* tenants are ordered by ``(shard_id, tenant)`` — the shard id is the
  tie-break for any cross-shard ordering decision, so two merges over
  the same reports produce byte-identical output regardless of
  arrival order;
* the fleet watermark is the **minimum** over the reporting shards'
  watermarks (each shard's watermark is the minimum over its tenants)
  — the fleet never claims event-time progress a straggler has not
  reached;
* totals are plain sums over tenant digests.

Shard reports arrive through bounded :class:`ShardMailbox`\\ es
(drop-oldest): a slow or dead shard can stale *its own* tenants'
entries in the fleet snapshot (it appears in ``stale_shards``) but
never blocks the other shards' fan-in.
"""

from __future__ import annotations

import hashlib
import json
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.live.metrics import Histogram
from repro.live.pipeline import DiagnosisSnapshot


def _json_time(value: float) -> Optional[float]:
    """inf/-inf watermarks (nothing seen yet) are not valid JSON."""
    if math.isinf(value):
        return None
    return value


@dataclass(frozen=True)
class TenantDigest:
    """The fleet-visible summary of one tenant's latest snapshot."""

    shard_id: int
    tenant: str
    final: bool
    seq: int
    watermark_ns: Optional[float]
    step_records: int
    switch_reports: int
    confidence: float
    degraded: bool
    findings: tuple[str, ...]
    top_contributor: Optional[str]
    top_score: float
    events_admitted: int
    events_shed: int
    budget_exhausted: bool
    snapshot_digest: str

    @classmethod
    def from_snapshot(cls, shard_id: int, tenant: str,
                      snapshot: DiagnosisSnapshot,
                      events_admitted: int = 0,
                      events_shed: int = 0,
                      budget_exhausted: bool = False
                      ) -> "TenantDigest":
        ranked = snapshot.top_contributors(1)
        top_flow, top_score = (ranked[0][0].short(), ranked[0][1]) \
            if ranked and ranked[0][1] > 0 else (None, 0.0)
        digest = hashlib.sha256(
            snapshot.canonical_json().encode("utf-8")).hexdigest()
        return cls(
            shard_id=shard_id,
            tenant=tenant,
            final=snapshot.final,
            seq=snapshot.seq,
            watermark_ns=_json_time(snapshot.watermark_ns),
            step_records=snapshot.step_records_ingested,
            switch_reports=snapshot.switch_reports_ingested,
            confidence=snapshot.confidence,
            degraded=snapshot.degraded,
            findings=tuple(sorted({f.type.value
                                   for f in snapshot.result.findings})),
            top_contributor=top_flow,
            top_score=top_score,
            events_admitted=events_admitted,
            events_shed=events_shed,
            budget_exhausted=budget_exhausted,
            snapshot_digest=digest,
        )

    def to_dict(self) -> dict:
        return {
            "shard": self.shard_id,
            "tenant": self.tenant,
            "final": self.final,
            "seq": self.seq,
            "watermark_ns": self.watermark_ns,
            "step_records": self.step_records,
            "switch_reports": self.switch_reports,
            "confidence": self.confidence,
            "degraded": self.degraded,
            "findings": list(self.findings),
            "top_contributor": self.top_contributor,
            "top_score": self.top_score,
            "events_admitted": self.events_admitted,
            "events_shed": self.events_shed,
            "budget_exhausted": self.budget_exhausted,
            "snapshot_digest": self.snapshot_digest,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TenantDigest":
        return cls(
            shard_id=int(data["shard"]),
            tenant=str(data["tenant"]),
            final=bool(data["final"]),
            seq=int(data["seq"]),
            watermark_ns=None if data["watermark_ns"] is None
            else float(data["watermark_ns"]),
            step_records=int(data["step_records"]),
            switch_reports=int(data["switch_reports"]),
            confidence=float(data["confidence"]),
            degraded=bool(data["degraded"]),
            findings=tuple(str(f) for f in data["findings"]),
            top_contributor=data["top_contributor"],
            top_score=float(data["top_score"]),
            events_admitted=int(data["events_admitted"]),
            events_shed=int(data["events_shed"]),
            budget_exhausted=bool(data["budget_exhausted"]),
            snapshot_digest=str(data["snapshot_digest"]),
        )


@dataclass
class ShardReport:
    """One shard's contribution to a fleet merge."""

    shard_id: int
    final: bool
    tenants: list[TenantDigest] = field(default_factory=list)
    restarts: int = 0
    checkpoints_written: int = 0
    events_consumed: int = 0

    @property
    def watermark_ns(self) -> Optional[float]:
        """Min over the shard's tenants; None when nothing reported."""
        marks = [t.watermark_ns for t in self.tenants
                 if t.watermark_ns is not None]
        if not marks or len(marks) < len(self.tenants):
            return None
        return min(marks)

    def to_dict(self) -> dict:
        return {
            "shard": self.shard_id,
            "final": self.final,
            "watermark_ns": self.watermark_ns,
            "restarts": self.restarts,
            "checkpoints_written": self.checkpoints_written,
            "events_consumed": self.events_consumed,
            "tenants": [t.to_dict()
                        for t in sorted(self.tenants,
                                        key=lambda t: t.tenant)],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardReport":
        return cls(
            shard_id=int(data["shard"]),
            final=bool(data["final"]),
            tenants=[TenantDigest.from_dict(t)
                     for t in data["tenants"]],
            restarts=int(data.get("restarts", 0)),
            checkpoints_written=int(
                data.get("checkpoints_written", 0)),
            events_consumed=int(data.get("events_consumed", 0)),
        )


@dataclass
class FleetSnapshot:
    """One deterministic fleet-level merge of per-shard reports."""

    seq: int
    final: bool
    watermark_ns: Optional[float]
    shards: list[int]
    stale_shards: list[int]
    tenants: list[TenantDigest]
    totals: dict

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "final": self.final,
            "watermark_ns": self.watermark_ns,
            "shards": list(self.shards),
            "stale_shards": list(self.stale_shards),
            "totals": dict(self.totals),
            "tenants": [t.to_dict() for t in self.tenants],
        }

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    def digest(self) -> str:
        return hashlib.sha256(
            self.canonical_json().encode("utf-8")).hexdigest()

    #: totals that describe fleet *operations*, not the diagnosis —
    #: a crashed-and-resumed fleet legitimately differs here
    OPERATIONAL_KEYS = ("restarts", "checkpoints_written")

    def diagnosis_dict(self) -> dict:
        """:meth:`to_dict` minus operational fields (merge count,
        restart/checkpoint totals).  This is the form the fleet
        recovery contract compares bit-for-bit: a fleet that was
        SIGKILLed and resumed must match an uninterrupted one here,
        while its restart counters may not."""
        data = self.to_dict()
        data.pop("seq", None)
        for key in self.OPERATIONAL_KEYS:
            data["totals"].pop(key, None)
        return data

    def diagnosis_json(self) -> str:
        return json.dumps(self.diagnosis_dict(), sort_keys=True)

    def diagnosis_digest(self) -> str:
        return hashlib.sha256(
            self.diagnosis_json().encode("utf-8")).hexdigest()

    def summary_line(self) -> str:
        tag = "FINAL" if self.final else f"#{self.seq}"
        wm = "-" if self.watermark_ns is None \
            else f"{self.watermark_ns / 1e6:.3f}ms"
        degraded = self.totals["tenants_degraded"]
        anomalous = self.totals["tenants_with_findings"]
        stale = f" stale={self.stale_shards}" if self.stale_shards \
            else ""
        return (f"[{tag}] fleet wm={wm} "
                f"shards={len(self.shards)} "
                f"tenants={len(self.tenants)} "
                f"anomalous={anomalous} degraded={degraded}"
                f"{stale}")


def merge_reports(reports: Iterable[ShardReport],
                  expected_shards: Iterable[int],
                  seq: int = 0, final: bool = False) -> FleetSnapshot:
    """The deterministic fan-in merge (see module docstring).

    ``expected_shards`` lists every shard the fleet should hear from;
    expected shards with no report land in ``stale_shards``.
    """
    by_shard: dict[int, ShardReport] = {}
    for report in reports:
        held = by_shard.get(report.shard_id)
        # latest report per shard wins; ties break on shard id order
        # by construction (one mailbox per shard)
        if held is None or report.events_consumed \
                >= held.events_consumed:
            by_shard[report.shard_id] = report
    expected = sorted(set(expected_shards))
    present = [s for s in expected if s in by_shard]
    stale = [s for s in expected if s not in by_shard]

    tenants: list[TenantDigest] = []
    for shard_id in present:
        tenants.extend(sorted(by_shard[shard_id].tenants,
                              key=lambda t: (t.shard_id, t.tenant)))
    tenants.sort(key=lambda t: (t.shard_id, t.tenant))

    # a shard with no tenants owns no stream, so it cannot hold the
    # fleet watermark back; a shard whose tenants have not produced a
    # watermark yet does (None stays None until every stream starts)
    marks = [by_shard[s].watermark_ns for s in present
             if by_shard[s].tenants]
    watermark = None
    if marks and all(m is not None for m in marks):
        watermark = min(marks)

    totals = {
        "tenants": len(tenants),
        "tenants_final": sum(1 for t in tenants if t.final),
        "tenants_degraded": sum(1 for t in tenants if t.degraded),
        "tenants_with_findings": sum(1 for t in tenants
                                     if t.findings),
        "tenants_budget_exhausted": sum(
            1 for t in tenants if t.budget_exhausted),
        "step_records": sum(t.step_records for t in tenants),
        "switch_reports": sum(t.switch_reports for t in tenants),
        "events_admitted": sum(t.events_admitted for t in tenants),
        "events_shed": sum(t.events_shed for t in tenants),
        "restarts": sum(by_shard[s].restarts for s in present),
        "checkpoints_written": sum(by_shard[s].checkpoints_written
                                   for s in present),
    }
    return FleetSnapshot(
        seq=seq,
        final=final,
        watermark_ns=watermark,
        shards=present,
        stale_shards=stale,
        tenants=tenants,
        totals=totals,
    )


class ShardMailbox:
    """Bounded drop-oldest queue of one shard's reports."""

    def __init__(self, capacity: int = 4) -> None:
        self.capacity = max(1, capacity)
        self._queue: deque[ShardReport] = deque()
        self.offered = 0
        self.dropped = 0

    def offer(self, report: ShardReport) -> None:
        self.offered += 1
        if len(self._queue) >= self.capacity:
            self._queue.popleft()
            self.dropped += 1
        self._queue.append(report)

    def latest(self) -> Optional[ShardReport]:
        return self._queue[-1] if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)


class FleetAggregator:
    """Holds one mailbox per shard and produces fleet snapshots."""

    def __init__(self, expected_shards: Iterable[int],
                 mailbox_capacity: int = 4) -> None:
        self.expected = sorted(set(expected_shards))
        self.mailboxes = {shard: ShardMailbox(mailbox_capacity)
                          for shard in self.expected}
        self._seq = 0
        self.merge_seconds = Histogram(
            "fleet_merge_seconds",
            "wall time to merge per-shard reports into one fleet "
            "snapshot")

    def offer(self, report: ShardReport) -> None:
        mailbox = self.mailboxes.get(report.shard_id)
        if mailbox is None:
            raise ValueError(
                f"report from unknown shard {report.shard_id}")
        mailbox.offer(report)

    def merge(self, final: bool = False,
              clock=None) -> FleetSnapshot:
        """Merge the freshest report per shard; never blocks on a
        shard whose mailbox is empty (it is reported stale)."""
        import time as _time

        clock = clock or _time.perf_counter
        start = clock()
        self._seq += 1
        reports = [box.latest() for box in self.mailboxes.values()]
        snapshot = merge_reports(
            [r for r in reports if r is not None],
            self.expected, seq=self._seq, final=final)
        self.merge_seconds.observe(max(0.0, clock() - start))
        return snapshot

    def dropped_total(self) -> int:
        return sum(box.dropped for box in self.mailboxes.values())


__all__ = [
    "TenantDigest",
    "ShardReport",
    "FleetSnapshot",
    "ShardMailbox",
    "FleetAggregator",
    "merge_reports",
]
