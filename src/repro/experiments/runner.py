"""Parallel experiment runner with a content-addressed result cache.

:func:`repro.experiments.harness.run_case` is pure given its inputs:
the simulation is deterministic, every random draw is derived from the
case's stable seed, and the measured overheads depend only on the
scenario configuration and the diagnosis system.  That purity licenses
two optimisations the figure benchmarks (Figs. 9-14) build on:

* **process-pool fan-out** — cases x systems are independent, so the
  matrix runs across a :class:`concurrent.futures.ProcessPoolExecutor`
  (workers rebuild the case from its primitive coordinates; nothing
  heavier than a dict crosses the process boundary);
* **content-addressed caching** — each result is stored on disk under
  the SHA-256 of everything that determines it (scenario, case id,
  system, the full scenario + network configuration, and the trace
  schema version).  A warm cache turns a figure regeneration into a
  directory scan.

Cache keys deliberately hash *values*, not factory identities: two
``ScenarioConfig``s whose ``network_config_factory``s produce equal
``NetworkConfig``s share cache entries, and any knob change produces a
new key (stale entries are simply never read again).

Environment knobs (respected by :mod:`repro.experiments.figures`):

* ``REPRO_CACHE_DIR`` — enable the on-disk cache rooted here;
* ``REPRO_WORKERS`` — process-pool size (unset/0 = run serially).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Optional, Sequence

from repro.anomalies.scenarios import (
    ScenarioCase,
    ScenarioConfig,
    make_cases,
)
from repro.baselines.adapter import DiagnosisSystemAdapter
from repro.experiments.harness import (
    CaseResult,
    DEFAULT_SYSTEMS,
    run_case,
)
from repro.simnet.network import NetworkConfig
from repro.traces.columnar import COLUMNAR_VERSION
from repro.traces.store import FORMAT_VERSION as TRACE_SCHEMA_VERSION

#: bump when CaseResult's serialised shape changes (invalidates cache)
RESULT_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# CaseResult <-> JSON
# ----------------------------------------------------------------------
def _json_safe(value):
    """True when ``value`` round-trips through JSON unchanged."""
    try:
        return json.loads(json.dumps(value)) == value
    except (TypeError, ValueError):
        return False


def result_to_dict(result: CaseResult) -> dict:
    """Serialise a result, dropping non-JSON extras (e.g. the live
    diagnosis object the Vedrfolnir adapter attaches).  Fields are
    copied shallowly — every non-extras field is a primitive, and
    recursing into extras would choke on diagnosis internals."""
    doc = {f.name: getattr(result, f.name)
           for f in dataclasses.fields(result) if f.name != "extras"}
    doc["extras"] = {k: v for k, v in result.extras.items()
                     if _json_safe(v)}
    return doc


def result_from_dict(doc: dict) -> CaseResult:
    return CaseResult(**doc)


# ----------------------------------------------------------------------
# content addressing
# ----------------------------------------------------------------------
def _fingerprint_default(value):
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    return repr(value)


def config_fingerprint(config: ScenarioConfig) -> dict:
    """Every value in a ScenarioConfig that affects a run's outcome.

    The network-config *factory* is fingerprinted by the config it
    produces, so equal configurations share cache entries regardless of
    how they were constructed.
    """
    return {
        "scale": config.scale,
        "num_collective_nodes": config.num_collective_nodes,
        "fat_tree_k": config.fat_tree_k,
        "base_seed": config.base_seed,
        "network": dataclasses.asdict(config.network_config_factory()),
    }


def case_cache_key(case: ScenarioCase, system_name: str,
                   key_extra: Optional[dict] = None) -> str:
    """SHA-256 over everything that determines the case's result."""
    doc = {
        "trace_schema": TRACE_SCHEMA_VERSION,
        "columnar": COLUMNAR_VERSION,
        "result_schema": RESULT_SCHEMA_VERSION,
        "scenario": case.scenario,
        "case_id": case.case_id,
        "system": system_name,
        "nodes_override": case.nodes_override,
        "config": config_fingerprint(case.config),
        "extra": key_extra,
    }
    canonical = json.dumps(doc, sort_keys=True,
                           default=_fingerprint_default)
    return hashlib.sha256(canonical.encode()).hexdigest()


def trace_fingerprint(path) -> dict:
    """``key_extra`` fragment for a case whose inputs include a
    recorded trace.

    The fingerprint is the trace's columnar content address
    (:func:`repro.traces.content_address`) — a digest over the
    *deterministic columnar encoding*, so the JSONL capture and its
    columnar conversion hash identically and a format migration does
    not invalidate cached results keyed this way.
    """
    from repro.traces import content_address

    return {"trace_content": content_address(path)}


class ResultCache:
    """Content-addressed on-disk store of serialised CaseResults.

    One JSON file per key, written atomically (temp file + rename) so a
    crashed run never leaves a torn entry for the next run to trust.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[CaseResult]:
        try:
            doc = json.loads(self._path(key).read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if doc.get("schema") != RESULT_SCHEMA_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return result_from_dict(doc["result"])

    def put(self, key: str, result: CaseResult) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        doc = {"schema": RESULT_SCHEMA_VERSION, "key": key,
               "result": result_to_dict(result)}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(doc, handle, indent=1)
                handle.write("\n")
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:  # repro: noqa RPR030 - best-effort tmp cleanup; the original error re-raises below
                pass
            raise

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))


# ----------------------------------------------------------------------
# process-pool fan-out
# ----------------------------------------------------------------------
def _case_spec(case: ScenarioCase, system_name: str) -> dict:
    """The primitive coordinates a worker rebuilds the case from."""
    return {
        "scenario": case.scenario,
        "case_id": case.case_id,
        "system": system_name,
        "scale": case.config.scale,
        "num_collective_nodes": case.config.num_collective_nodes,
        "fat_tree_k": case.config.fat_tree_k,
        "base_seed": case.config.base_seed,
    }


def _run_spec(spec: dict) -> dict:
    """Worker entry point: rebuild the case and run it.

    Module-level (picklable) and dict-in/dict-out, so the process pool
    ships only primitives.  ``make_cases`` reapplies scenario-specific
    node overrides, keeping worker-built cases identical to the
    parent's.
    """
    config = ScenarioConfig(
        scale=spec["scale"],
        num_collective_nodes=spec["num_collective_nodes"],
        fat_tree_k=spec["fat_tree_k"],
        base_seed=spec["base_seed"],
    )
    case = make_cases(spec["scenario"], spec["case_id"] + 1,
                      config)[spec["case_id"]]
    return result_to_dict(run_case(case, spec["system"]))


def _poolable(case: ScenarioCase) -> bool:
    """Only cases a worker can rebuild from primitives fan out; cases
    with a custom network-config factory run in the parent (still
    cached under their content hash)."""
    return case.config.network_config_factory is NetworkConfig


def cached_run_case(case: ScenarioCase, system_name: str,
                    system: Optional[DiagnosisSystemAdapter] = None,
                    cache: Optional[ResultCache] = None,
                    key_extra: Optional[dict] = None) -> CaseResult:
    """run_case with an optional cache in front.

    ``key_extra`` must capture any behaviour of a custom ``system``
    instance that the system name alone does not (e.g. the detection
    config an ablation sweeps); omitting it for a customised adapter
    would alias distinct runs onto one cache entry.
    """
    if cache is not None:
        key = case_cache_key(case, system_name, key_extra)
        hit = cache.get(key)
        if hit is not None:
            return hit
    result = run_case(case, system_name, system=system)
    if cache is not None:
        cache.put(key, result)
    return result


def run_matrix_parallel(cases: Sequence[ScenarioCase],
                        systems: tuple[str, ...] = DEFAULT_SYSTEMS,
                        max_workers: int = 0,
                        cache: Optional[ResultCache] = None
                        ) -> list[CaseResult]:
    """Every case under every system, optionally fanned out and cached.

    Returns results in the same case-major order as
    :func:`repro.experiments.harness.run_matrix`, whatever mix of cache
    hits, pool workers and in-parent runs produced them.
    """
    jobs = [(case, system) for case in cases for system in systems]
    results: list[Optional[CaseResult]] = [None] * len(jobs)
    keys: list[Optional[str]] = [None] * len(jobs)

    pending: list[int] = []
    for index, (case, system) in enumerate(jobs):
        if cache is not None:
            keys[index] = case_cache_key(case, system)
            hit = cache.get(keys[index])
            if hit is not None:
                results[index] = hit
                continue
        pending.append(index)

    pooled = [i for i in pending if _poolable(jobs[i][0])]
    if max_workers > 1 and len(pooled) > 1:
        specs = [_case_spec(*jobs[i]) for i in pooled]
        workers = min(max_workers, len(pooled))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for index, doc in zip(pooled, pool.map(_run_spec, specs)):
                results[index] = result_from_dict(doc)
    else:
        pooled = []

    for index in pending:
        if results[index] is None:
            case, system = jobs[index]
            results[index] = run_case(case, system)
        if cache is not None:
            cache.put(keys[index], results[index])

    return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# environment plumbing (shared with figures and benchmarks)
# ----------------------------------------------------------------------
def cache_from_env() -> Optional[ResultCache]:
    """A ResultCache rooted at $REPRO_CACHE_DIR, or None when unset."""
    root = os.environ.get("REPRO_CACHE_DIR")
    return ResultCache(root) if root else None


def workers_from_env() -> int:
    """$REPRO_WORKERS as an int (0/unset = serial)."""
    try:
        return int(os.environ.get("REPRO_WORKERS", "0"))
    except ValueError:
        return 0
