"""Per-case runner and the paper's scoring rules (§IV-A).

Scoring:

* **flow contention / incast** — detecting *all* injected flows is a
  true positive; detecting only some is a false positive; failing to
  detect any anomaly is a false negative.
* **PFC storm / backpressure** — tracing to the source port is a true
  positive; merely reporting the presence of PFC is a false positive;
  detecting nothing is a false negative.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.anomalies.scenarios import GroundTruth, ScenarioCase
from repro.baselines.adapter import DiagnosisSystemAdapter, SystemOutput
from repro.baselines.full_polling import FullPollingSystem
from repro.baselines.hawkeye import HawkeyeConfig, HawkeyeSystem
from repro.baselines.vedrfolnir_adapter import VedrfolnirAdapter
from repro.core.diagnosis import AnomalyType, DiagnosisResult

SYSTEM_FACTORIES: dict[str, Callable[[], DiagnosisSystemAdapter]] = {
    "vedrfolnir": VedrfolnirAdapter,
    "hawkeye-maxr": lambda: HawkeyeSystem(HawkeyeConfig(mode="max")),
    "hawkeye-minr": lambda: HawkeyeSystem(HawkeyeConfig(mode="min")),
    "full-polling": FullPollingSystem,
}

DEFAULT_SYSTEMS = tuple(SYSTEM_FACTORIES)

PFC_TYPES = (AnomalyType.PFC_STORM, AnomalyType.PFC_BACKPRESSURE,
             AnomalyType.PFC_DEADLOCK)


def make_system(name: str) -> DiagnosisSystemAdapter:
    try:
        return SYSTEM_FACTORIES[name]()
    except KeyError:
        raise ValueError(f"unknown system {name!r}; "
                         f"choose from {sorted(SYSTEM_FACTORIES)}") from None


@dataclass
class CaseResult:
    """Everything measured for one (case, system) run."""

    scenario: str
    case_id: int
    system: str
    outcome: str  # "tp" | "fp" | "fn"
    processing_bytes: int
    bandwidth_bytes: int
    poll_packets: int
    notify_packets: int
    report_count: int
    triggers: int
    collective_completed: bool
    collective_time_ns: Optional[float]
    wall_seconds: float
    detected_flow_count: int
    injected_flow_count: int
    extras: dict = field(default_factory=dict)


def score_case(truth: GroundTruth, result: DiagnosisResult) -> str:
    """Apply the paper's TP/FP/FN criteria."""
    if truth.expects_flow_detection:
        if not result.findings:
            return "fn"
        detected = result.detected_flows
        if truth.injected_flows <= detected:
            return "tp"
        if detected & truth.injected_flows:
            return "fp"   # "detecting only some flows"
        return "fn"       # findings exist but none of the culprits
    if truth.scenario == "load_imbalance":
        findings = [f for f in result.findings
                    if f.type is AnomalyType.LOAD_IMBALANCE]
        if not findings:
            return "fn"
        roots = {p for f in findings for p in f.root_ports}
        return "tp" if truth.root_port in roots else "fp"
    # PFC localization scenarios
    pfc_findings = [f for f in result.findings if f.type in PFC_TYPES]
    if not pfc_findings:
        return "fn"
    if truth.root_port is not None and truth.root_port in result.root_ports:
        return "tp"
    return "fp"           # "merely reporting the presence of PFC"


def run_case(case: ScenarioCase, system_name: str,
             system: Optional[DiagnosisSystemAdapter] = None) -> CaseResult:
    """Run one scenario case under one diagnosis system."""
    wall_start = time.perf_counter()
    network, runtime = case.build_network()
    adapter = system if system is not None else make_system(system_name)
    adapter.attach(network, runtime)
    runtime.start()
    truth = case.inject(network, runtime)
    network.run_until_quiet(max_time=case.config.run_deadline_ns())
    output: SystemOutput = adapter.finalize()
    outcome = score_case(truth, output.result)
    return CaseResult(
        scenario=case.scenario,
        case_id=case.case_id,
        system=adapter.name,
        outcome=outcome,
        processing_bytes=network.processing_overhead_bytes,
        bandwidth_bytes=network.bandwidth_overhead_bytes,
        poll_packets=network.poll_packets,
        notify_packets=network.notify_packets,
        report_count=network.report_count,
        triggers=output.triggers,
        collective_completed=runtime.completed,
        collective_time_ns=runtime.total_time_ns,
        wall_seconds=time.perf_counter() - wall_start,
        detected_flow_count=len(output.result.detected_flows),
        injected_flow_count=len(truth.injected_flows),
        extras=dict(output.extras),
    )


def run_matrix(cases: list[ScenarioCase],
               systems: tuple[str, ...] = DEFAULT_SYSTEMS
               ) -> list[CaseResult]:
    """Run every case under every system (fresh network per run)."""
    results = []
    for case in cases:
        for system_name in systems:
            results.append(run_case(case, system_name))
    return results
