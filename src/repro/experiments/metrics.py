"""Precision/recall and overhead aggregation over case results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.experiments.harness import CaseResult


@dataclass
class ScenarioSystemMetrics:
    """Aggregated metrics for one (scenario, system) cell."""

    scenario: str
    system: str
    cases: int
    tp: int
    fp: int
    fn: int
    avg_processing_bytes: float
    avg_bandwidth_bytes: float
    avg_triggers: float
    avg_reports: float

    @property
    def precision(self) -> float:
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else 0.0

    @property
    def avg_processing_kb(self) -> float:
        return self.avg_processing_bytes / 1000.0

    @property
    def avg_bandwidth_kb(self) -> float:
        return self.avg_bandwidth_bytes / 1000.0


def aggregate(results: Iterable[CaseResult]) -> dict[tuple[str, str],
                                                     ScenarioSystemMetrics]:
    """Group case results into per-(scenario, system) metrics."""
    groups: dict[tuple[str, str], list[CaseResult]] = {}
    for result in results:
        groups.setdefault((result.scenario, result.system), []).append(result)
    metrics = {}
    for (scenario, system), rows in sorted(groups.items()):
        outcomes = [r.outcome for r in rows]
        metrics[(scenario, system)] = ScenarioSystemMetrics(
            scenario=scenario,
            system=system,
            cases=len(rows),
            tp=outcomes.count("tp"),
            fp=outcomes.count("fp"),
            fn=outcomes.count("fn"),
            avg_processing_bytes=_mean(r.processing_bytes for r in rows),
            avg_bandwidth_bytes=_mean(r.bandwidth_bytes for r in rows),
            avg_triggers=_mean(r.triggers for r in rows),
            avg_reports=_mean(r.report_count for r in rows),
        )
    return metrics


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def format_table(metrics: dict[tuple[str, str], ScenarioSystemMetrics],
                 columns: Optional[list[str]] = None) -> str:
    """Fixed-width text table, one row per (scenario, system)."""
    columns = columns or ["precision", "recall", "avg_processing_kb",
                          "avg_bandwidth_kb"]
    header = f"{'scenario':<18} {'system':<14}" + "".join(
        f" {c:>18}" for c in columns)
    lines = [header, "-" * len(header)]
    for (_scenario, _system), m in sorted(metrics.items()):
        row = f"{m.scenario:<18} {m.system:<14}"
        for column in columns:
            value = getattr(m, column)
            row += f" {value:>18.3f}" if isinstance(value, float) \
                else f" {value:>18}"
        lines.append(row)
    return "\n".join(lines)
