"""One entry point per paper figure (Figs. 9-14).

Each function returns plain row dicts (and the benchmarks print them),
so the same code drives pytest benchmarks, the EXPERIMENTS.md tables and
ad-hoc exploration.  Expensive scenario matrices are cached per-process
so Fig. 9 and Fig. 10 share one set of runs, exactly as in the paper.

Fidelity knobs (environment variables):

* ``REPRO_CASES`` — cases per scenario (default: the paper's 60/60/40/60,
  but the benchmarks pass small defaults; export e.g. ``REPRO_CASES=60``
  for full fidelity);
* ``REPRO_SCALE`` — size/time scale factor (default 0.005; 1.0 = the
  paper's actual 360 MB flows);
* ``REPRO_WORKERS`` — fan the scenario matrix across this many worker
  processes (0/unset = serial);
* ``REPRO_CACHE_DIR`` — content-addressed result cache directory; a
  warm cache makes figure regeneration skip re-simulation entirely
  (see :mod:`repro.experiments.runner`).
"""

from __future__ import annotations

import gc
import os
import time
import tracemalloc
from typing import Optional, Sequence

from repro.anomalies.scenarios import ScenarioConfig, make_cases, SCENARIOS
from repro.collective.ring import ring_allgather
from repro.collective.runtime import CollectiveRuntime
from repro.core.detection import DetectionConfig
from repro.core.system import VedrfolnirConfig, VedrfolnirSystem
from repro.experiments.harness import (
    CaseResult,
    DEFAULT_SYSTEMS,
)
from repro.experiments.runner import (
    cache_from_env,
    cached_run_case,
    run_matrix_parallel,
    workers_from_env,
)
from repro.experiments.metrics import aggregate
from repro.simnet.network import Network
from repro.simnet.packet import FlowKey
from repro.simnet.topology import build_fat_tree
from repro.simnet.units import GB, MB, ms

_matrix_cache: dict[tuple, list[CaseResult]] = {}


def env_scale(default: float = 0.005) -> float:
    return float(os.environ.get("REPRO_SCALE", default))


def env_cases(default: int) -> int:
    return int(os.environ.get("REPRO_CASES", default))


def scenario_config(scale: Optional[float] = None,
                    base_seed: int = 42) -> ScenarioConfig:
    return ScenarioConfig(scale=scale if scale is not None else env_scale(),
                          base_seed=base_seed)


# ----------------------------------------------------------------------
# Figs. 9 & 10: accuracy and overhead vs. baselines
# ----------------------------------------------------------------------
def fig9_fig10_matrix(cases_per_scenario: int = 4,
                      scale: Optional[float] = None,
                      systems: Sequence[str] = DEFAULT_SYSTEMS,
                      scenarios: Sequence[str] = SCENARIOS
                      ) -> list[CaseResult]:
    """The shared scenario × system run matrix behind Figs. 9 and 10."""
    key = (cases_per_scenario, scale, tuple(systems), tuple(scenarios))
    if key not in _matrix_cache:
        cfg = scenario_config(scale)
        cache = cache_from_env()
        workers = workers_from_env()
        results: list[CaseResult] = []
        for scenario in scenarios:
            cases = make_cases(scenario, cases_per_scenario, cfg)
            results.extend(run_matrix_parallel(
                cases, tuple(systems), max_workers=workers, cache=cache))
        _matrix_cache[key] = results
    return _matrix_cache[key]


def fig9_precision_recall(cases_per_scenario: int = 4,
                          scale: Optional[float] = None,
                          systems: Sequence[str] = DEFAULT_SYSTEMS
                          ) -> list[dict]:
    """Fig. 9a/9b rows: precision & recall per scenario per system."""
    results = fig9_fig10_matrix(cases_per_scenario, scale, systems)
    rows = []
    for (scenario, system), m in aggregate(results).items():
        rows.append({
            "figure": "9",
            "scenario": scenario,
            "system": system,
            "precision": round(m.precision, 3),
            "recall": round(m.recall, 3),
            "tp": m.tp, "fp": m.fp, "fn": m.fn,
        })
    return rows


def fig10_overhead(cases_per_scenario: int = 4,
                   scale: Optional[float] = None,
                   systems: Sequence[str] = DEFAULT_SYSTEMS) -> list[dict]:
    """Fig. 10a/10b rows: processing and bandwidth overhead (KB)."""
    results = fig9_fig10_matrix(cases_per_scenario, scale, systems)
    rows = []
    for (scenario, system), m in aggregate(results).items():
        rows.append({
            "figure": "10",
            "scenario": scenario,
            "system": system,
            "processing_kb": round(m.avg_processing_kb, 1),
            "bandwidth_kb": round(m.avg_bandwidth_kb, 1),
            "avg_triggers": round(m.avg_triggers, 1),
            "avg_reports": round(m.avg_reports, 1),
        })
    return rows


# ----------------------------------------------------------------------
# Fig. 11: host-side monitor overhead (testbed substitute)
# ----------------------------------------------------------------------
def fig11_host_overhead(message_bytes: Optional[int] = None,
                        scale: Optional[float] = None,
                        nodes: int = 4, repeats: int = 3) -> list[dict]:
    """CPU time and peak memory of the 4-node AllGather run with the
    Vedrfolnir monitor enabled vs. disabled.

    Substitutes the paper's NCCL testbed (4 x H100): the measured
    quantity is the same — the *delta* the monitor adds to the host.
    """
    effective_scale = scale if scale is not None else env_scale()
    size = message_bytes if message_bytes is not None \
        else max(64_000, int(1 * GB * effective_scale))
    rows = []
    for monitored in (False, True):
        cpu_times, peaks, sim_times = [], [], []
        for _ in range(repeats):
            gc.collect()
            tracemalloc.start()
            start_cpu = time.process_time()
            network = Network(build_fat_tree(4))
            schedule = ring_allgather(
                [f"h{i}" for i in range(nodes)], size // nodes)
            runtime = CollectiveRuntime(network, schedule)
            system = VedrfolnirSystem(
                network, runtime,
                config=VedrfolnirConfig(monitoring_enabled=monitored))
            runtime.start()
            network.run_until_quiet(max_time=ms(10_000))
            if monitored:
                system.analyze()
            cpu_times.append(time.process_time() - start_cpu)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            peaks.append(peak)
            sim_times.append(runtime.total_time_ns or 0.0)
        rows.append({
            "figure": "11",
            "monitor": "enabled" if monitored else "disabled",
            "cpu_seconds": round(sum(cpu_times) / repeats, 4),
            "peak_memory_kb": round(sum(peaks) / repeats / 1000, 1),
            "collective_ms": round(sum(sim_times) / repeats / 1e6, 3),
        })
    base, mon = rows
    mon["cpu_overhead_pct"] = round(
        100 * (mon["cpu_seconds"] - base["cpu_seconds"])
        / max(base["cpu_seconds"], 1e-9), 1)
    mon["memory_overhead_pct"] = round(
        100 * (mon["peak_memory_kb"] - base["peak_memory_kb"])
        / max(base["peak_memory_kb"], 1e-9), 1)
    return rows


# ----------------------------------------------------------------------
# Fig. 12: RTT-threshold x detection-count sweep
# ----------------------------------------------------------------------
def fig12_param_sweep(cases_per_scenario: int = 3,
                      scale: Optional[float] = None,
                      rtt_factors: Sequence[float] = (1.2, 1.8, 2.4),
                      detection_counts: Sequence[int] = (1, 3, 5),
                      scenarios: Sequence[str] = SCENARIOS) -> list[dict]:
    """Precision & recall of Vedrfolnir per scenario under each
    (RTT threshold %, detections per step) combination."""
    from repro.baselines.vedrfolnir_adapter import VedrfolnirAdapter

    cfg = scenario_config(scale)
    cache = cache_from_env()
    rows = []
    for scenario in scenarios:
        cases = make_cases(scenario, cases_per_scenario, cfg)
        for factor in rtt_factors:
            for count in detection_counts:
                results = []
                for case in cases:
                    adapter = VedrfolnirAdapter(VedrfolnirConfig(
                        detection=DetectionConfig(
                            rtt_threshold_factor=factor,
                            detections_per_step=count)))
                    results.append(cached_run_case(
                        case, "vedrfolnir", system=adapter, cache=cache,
                        key_extra={"fig": "12",
                                   "rtt_threshold_factor": factor,
                                   "detections_per_step": count}))
                m = aggregate(results)[(scenario, "vedrfolnir")]
                rows.append({
                    "figure": "12",
                    "scenario": scenario,
                    "rtt_threshold_pct": int(factor * 100),
                    "detections_per_step": count,
                    "precision": round(m.precision, 3),
                    "recall": round(m.recall, 3),
                })
    return rows


# ----------------------------------------------------------------------
# Fig. 13: ablations
# ----------------------------------------------------------------------
def fig13a_threshold_ablation(cases: int = 3,
                              scale: Optional[float] = None,
                              fixed_factors: Sequence[float] =
                              (0.8, 1.2, 1.8, 2.4, 3.6)) -> list[dict]:
    """Step-grained vs. fixed RTT thresholds: precision and processing
    overhead in the flow-contention scenario (≤3 detections/step)."""
    from repro.baselines.vedrfolnir_adapter import VedrfolnirAdapter

    cfg = scenario_config(scale)
    case_list = make_cases("flow_contention", cases, cfg)
    # reference base RTT: the max across the topology (what a fixed
    # threshold would realistically be derived from)
    probe_net, probe_rt = case_list[0].build_network()
    base_rtts = [probe_net.routing.base_rtt_ns(
        s.node, s.peer, packet_bytes=probe_net.config.mtu_payload_bytes + 66)
        for s in probe_rt.schedule.all_steps()]
    max_base = max(base_rtts)

    settings: list[tuple[str, Optional[float]]] = [("step-aware", None)]
    settings += [(f"fixed-{int(f * 100)}%", f * max_base)
                 for f in fixed_factors]
    cache = cache_from_env()
    rows = []
    for label, fixed in settings:
        results = []
        for case in case_list:
            adapter = VedrfolnirAdapter(VedrfolnirConfig(
                detection=DetectionConfig(
                    detections_per_step=3,
                    fixed_rtt_threshold_ns=fixed)))
            results.append(cached_run_case(
                case, "vedrfolnir", system=adapter, cache=cache,
                key_extra={"fig": "13a", "detections_per_step": 3,
                           "fixed_rtt_threshold_ns": fixed}))
        m = aggregate(results)[("flow_contention", "vedrfolnir")]
        rows.append({
            "figure": "13a",
            "threshold": label,
            "precision": round(m.precision, 3),
            "recall": round(m.recall, 3),
            "processing_kb": round(m.avg_processing_kb, 1),
        })
    return rows


def fig13b_count_ablation(cases: int = 3,
                          scale: Optional[float] = None,
                          counts: Sequence[int] = (1, 2, 3, 5, 8)
                          ) -> list[dict]:
    """Detection-count allocation vs. Hawkeye-like unrestricted
    triggering: overhead in the flow-contention scenario."""
    from repro.baselines.vedrfolnir_adapter import VedrfolnirAdapter

    cfg = scenario_config(scale)
    case_list = make_cases("flow_contention", cases, cfg)
    settings: list[tuple[str, DetectionConfig]] = [
        (str(count), DetectionConfig(detections_per_step=count))
        for count in counts]
    settings.append(("unrestricted", DetectionConfig(
        detections_per_step=10_000, restrict_trigger_interval=False)))
    cache = cache_from_env()
    rows = []
    for label, det in settings:
        results = []
        for case in case_list:
            adapter = VedrfolnirAdapter(VedrfolnirConfig(detection=det))
            results.append(cached_run_case(
                case, "vedrfolnir", system=adapter, cache=cache,
                key_extra={"fig": "13b",
                           "detections_per_step": det.detections_per_step,
                           "restrict_trigger_interval":
                               det.restrict_trigger_interval}))
        m = aggregate(results)[("flow_contention", "vedrfolnir")]
        rows.append({
            "figure": "13b",
            "detections_per_step": label,
            "processing_kb": round(m.avg_processing_kb, 1),
            "bandwidth_kb": round(m.avg_bandwidth_kb, 1),
            "precision": round(m.precision, 3),
            "avg_triggers": round(m.avg_triggers, 1),
        })
    return rows


# ----------------------------------------------------------------------
# Fig. 14: case study
# ----------------------------------------------------------------------
def fig14_case_study(scale: Optional[float] = None,
                     seed: int = 7) -> dict:
    """The §IV-D case study: 8-node ring with two interfering background
    flows, BF1 ≈ 90 MB and BF2 ≈ 450 MB (scaled).

    Returns the pruned waiting graph, the critical path, the diagnosis
    and the contributor scores; the paper's qualitative result is that
    BF2's impact score far exceeds BF1's.
    """
    import random

    from repro.anomalies.scenarios import (
        collective_paths,
        find_colliding_flow,
        _switch_links,
    )

    effective_scale = scale if scale is not None else env_scale()
    network = Network(build_fat_tree(4))
    # the paper runs the ring among "Nodes 12-19"; our fat-tree's second
    # half of hosts plays that role
    nodes = [f"h{i}" for i in range(8, 16)]
    chunk = max(40_000, int(360 * MB * effective_scale))
    runtime = CollectiveRuntime(network, ring_allgather(nodes, chunk))
    system = VedrfolnirSystem(network, runtime)
    runtime.start()

    rng = random.Random(seed)
    links: set = set()
    for path in collective_paths(network, runtime).values():
        links |= _switch_links(path, network)
    bf_flows: dict[str, FlowKey] = {}
    for name, paper_mb, start_ms in (("BF1", 90, 0.0), ("BF2", 450, 0.1)):
        # background endpoints may be any host (as in Fig. 2a, where the
        # interfering flows cross the collective's switches)
        key = find_colliding_flow(network, links, rng)
        if key is None:
            raise RuntimeError("could not place a colliding background "
                               "flow for the case study")
        size = max(40_000, int(paper_mb * MB * effective_scale))
        flow = network.create_flow(key.src, key.dst, size,
                                   start_time=start_ms * effective_scale
                                   * ms(200),
                                   tag="background", key=key)
        flow.start()
        bf_flows[name] = key

    network.run_until_quiet(max_time=ms(2_000) * max(effective_scale, 0.01))
    diagnosis = system.analyze()
    diagnosis.waiting_graph.prune_unwaited()
    scores = {name: diagnosis.collective_scores.get(key, 0.0)
              for name, key in bf_flows.items()}
    critical = [f"F[{e.node}]S{e.step_index}"
                for e in diagnosis.critical_path]
    return {
        "figure": "14",
        "collective_completed": runtime.completed,
        "collective_ms": round((runtime.total_time_ns or 0) / 1e6, 3),
        "waiting_graph_vertices": len(diagnosis.waiting_graph.vertices),
        "critical_path": critical,
        "bottleneck_steps": diagnosis.bottleneck_steps,
        "findings": [f.type.value for f in diagnosis.result.findings],
        "bf_scores": scores,
        "bf_keys": {n: k.short() for n, k in bf_flows.items()},
        "diagnosis": diagnosis,
    }
