"""Workload generation: the paper's empirical LLM-training mix (§IV-A).

"97% of collective communication operations are AllReduce or AllGather,
each with a data size of 360 MB per traffic" — :func:`paper_workload`
draws operation sequences from that distribution, and
:class:`WorkloadRunner` executes them back-to-back on one network (as a
training loop does), attaching a fresh Vedrfolnir deployment per
operation so each collective gets its own waiting graph and diagnosis.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.collective.halving_doubling import halving_doubling_allreduce
from repro.collective.primitives import StepSchedule
from repro.collective.ring import (
    ring_allgather,
    ring_allreduce,
    ring_reduce_scatter,
)
from repro.collective.runtime import CollectiveRuntime
from repro.core.analyzer import VedrfolnirDiagnosis
from repro.core.system import VedrfolnirConfig, VedrfolnirSystem
from repro.simnet.network import Network
from repro.simnet.units import MB, ms

PAPER_OP_BYTES = 360 * MB


@dataclass(frozen=True)
class CollectiveJob:
    """One collective operation in a workload."""

    op: str          # "allreduce" | "allgather" | "reduce_scatter"
    algorithm: str   # "ring" | "halving_doubling"
    size_bytes: int

    def build_schedule(self, nodes: Sequence[str]) -> StepSchedule:
        if self.algorithm == "ring":
            factory = {
                "allreduce": ring_allreduce,
                "allgather": ring_allgather,
                "reduce_scatter": ring_reduce_scatter,
            }[self.op]
            return factory(list(nodes), self.size_bytes)
        if self.algorithm == "halving_doubling":
            if self.op != "allreduce":
                raise ValueError(
                    "halving_doubling workload jobs support allreduce")
            return halving_doubling_allreduce(list(nodes),
                                              self.size_bytes)
        raise ValueError(f"unknown algorithm {self.algorithm!r}")


def paper_workload(num_operations: int, scale: float = 0.005,
                   seed: int = 0) -> list[CollectiveJob]:
    """Draw operations from the paper's empirical distribution: 97%
    AllReduce/AllGather (split evenly), 3% ReduceScatter, all at 360 MB
    (scaled)."""
    if num_operations < 1:
        raise ValueError("need at least one operation")
    rng = random.Random(seed)
    size = max(40_000, int(PAPER_OP_BYTES * scale))
    jobs = []
    for _ in range(num_operations):
        roll = rng.random()
        if roll < 0.485:
            jobs.append(CollectiveJob("allreduce", "ring", size))
        elif roll < 0.97:
            jobs.append(CollectiveJob("allgather", "ring", size))
        else:
            jobs.append(CollectiveJob("reduce_scatter", "ring", size))
    return jobs


@dataclass
class JobResult:
    """Outcome of one executed workload job."""

    job: CollectiveJob
    completed: bool
    total_time_ns: Optional[float]
    #: ideal sequential duration (steps x unloaded step time)
    ideal_time_ns: float
    diagnosis: VedrfolnirDiagnosis
    triggers: int

    @property
    def slowdown(self) -> float:
        """Observed vs. ideal total duration."""
        if self.total_time_ns is None or self.ideal_time_ns <= 0:
            return float("inf") if self.total_time_ns is None else 0.0
        return self.total_time_ns / self.ideal_time_ns


class WorkloadRunner:
    """Executes jobs sequentially on a shared network.

    ``between_jobs`` (if given) is called with (runner, job_index)
    before each job starts — the hook experiments use to inject
    anomalies mid-workload.
    """

    def __init__(self, network: Network, nodes: Sequence[str],
                 config: Optional[VedrfolnirConfig] = None,
                 between_jobs: Optional[Callable[["WorkloadRunner", int],
                                                 None]] = None) -> None:
        self.network = network
        self.nodes = list(nodes)
        self.config = config
        self.between_jobs = between_jobs
        self.results: list[JobResult] = []

    def run(self, jobs: Sequence[CollectiveJob],
            per_job_deadline_ns: float = ms(500)) -> list[JobResult]:
        for index, job in enumerate(jobs):
            if self.between_jobs is not None:
                self.between_jobs(self, index)
            schedule = job.build_schedule(self.nodes)
            runtime = CollectiveRuntime(self.network, schedule,
                                        start_time=self.network.sim.now)
            system = VedrfolnirSystem(self.network, runtime,
                                      config=self.config)
            runtime.start()
            deadline = self.network.sim.now + per_job_deadline_ns
            self.network.run_until_quiet(max_time=deadline)
            ideal = sum(
                runtime.expected_step_time_ns(step)
                for step in schedule.steps[schedule.nodes[0]])
            self.results.append(JobResult(
                job=job,
                completed=runtime.completed,
                total_time_ns=runtime.total_time_ns,
                ideal_time_ns=ideal,
                diagnosis=system.analyze(),
                triggers=system.total_triggers,
            ))
        return self.results

    def slowest_job(self) -> Optional[int]:
        """Index of the job with the largest slowdown factor."""
        if not self.results:
            return None
        return max(range(len(self.results)),
                   key=lambda i: self.results[i].slowdown)
