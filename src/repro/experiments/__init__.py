"""Experiment harness: runs scenario cases under each diagnosis system
and regenerates the paper's tables and figures.

* :mod:`repro.experiments.harness` — per-case runner and scoring
  (the paper's TP/FP/FN criteria, §IV-A).
* :mod:`repro.experiments.metrics` — precision/recall and overhead
  aggregation.
* :mod:`repro.experiments.figures` — one entry point per paper figure
  (Figs. 9-14), each returning printable rows.
"""

from repro.experiments.harness import (
    CaseResult,
    run_case,
    run_matrix,
    score_case,
    SYSTEM_FACTORIES,
    make_system,
)
from repro.experiments.metrics import (
    ScenarioSystemMetrics,
    aggregate,
    format_table,
)
from repro.experiments import figures

__all__ = [
    "CaseResult",
    "run_case",
    "run_matrix",
    "score_case",
    "SYSTEM_FACTORIES",
    "make_system",
    "ScenarioSystemMetrics",
    "aggregate",
    "format_table",
    "figures",
]
