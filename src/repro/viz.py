"""Graph export for human consumption.

The paper presents its results as rendered graphs (Fig. 4 and Fig. 14).
This module emits Graphviz DOT text for both graph types — no graphviz
dependency, just strings you can pipe into ``dot -Tpng`` — plus a small
ASCII rendering of critical paths for terminals.

Edge colors follow Fig. 4's legend: execution edges are dark, intra-flow
ordering is orange, data dependencies are blue.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.provenance import ProvenanceGraph
from repro.core.waiting_graph import CriticalPathEntry, EdgeKind, WaitingGraph

_EDGE_COLORS = {
    EdgeKind.EXECUTION: "black",
    EdgeKind.INTRA_FLOW: "orange",
    EdgeKind.DATA_DEP: "blue",
}


def _quote(text: str) -> str:
    escaped = text.replace('"', '\\"')
    return f'"{escaped}"'


def waiting_graph_to_dot(graph: WaitingGraph,
                         highlight_critical: bool = True,
                         title: Optional[str] = None) -> str:
    """Render a waiting graph as DOT (Fig. 4 / Fig. 14a style)."""
    critical: set[tuple[str, int]] = set()
    if highlight_critical:
        critical = {(e.node, e.step_index)
                    for e in graph.critical_path()}
    lines = ["digraph waiting_graph {"]
    if title:
        lines.append(f"  label={_quote(title)};")
    lines.append("  rankdir=LR;")
    lines.append('  node [shape=circle, fontsize=10];')
    for vertex in sorted(graph.vertices,
                         key=lambda v: (v.node, v.step_index, v.point)):
        attrs = [f"label={_quote(vertex.label)}"]
        if (vertex.node, vertex.step_index) in critical:
            attrs.append('style=filled')
            attrs.append('fillcolor="#ffd5d5"')
        lines.append(f"  {_quote(vertex.label)} [{', '.join(attrs)}];")
    for edge in graph.edges:
        color = _EDGE_COLORS[edge.kind]
        label = ""
        if edge.kind is EdgeKind.EXECUTION and edge.weight_ns > 0:
            label = f', label="{edge.weight_ns / 1000:.1f}us"'
        lines.append(
            f"  {_quote(edge.src.label)} -> {_quote(edge.dst.label)} "
            f'[color={color}{label}];')
    lines.append("}")
    return "\n".join(lines)


def provenance_to_dot(graph: ProvenanceGraph,
                      max_weight_digits: int = 1,
                      title: Optional[str] = None) -> str:
    """Render a provenance graph as DOT (Fig. 14b style).

    Flows are ellipses (collective flows shaded), ports are boxes
    (storm sources shaded red); the three edge families carry their
    weights as labels.
    """
    lines = ["digraph provenance {"]
    if title:
        lines.append(f"  label={_quote(title)};")
    for flow in sorted(graph.flows, key=lambda f: f.short()):
        attrs = ['shape=ellipse', f"label={_quote(flow.short())}"]
        if flow in graph.collective_flows:
            attrs += ['style=filled', 'fillcolor="#d5e8ff"']
        lines.append(f"  {_quote('F:' + flow.short())} "
                     f"[{', '.join(attrs)}];")
    for port in sorted(graph.ports, key=str):
        attrs = ['shape=box', f"label={_quote(str(port))}"]
        if port in graph.ungrounded_pause_sources:
            attrs += ['style=filled', 'fillcolor="#ffb0b0"']
        elif port in graph.paused_ports:
            attrs += ['style=filled', 'fillcolor="#fff2b0"']
        lines.append(f"  {_quote('P:' + str(port))} "
                     f"[{', '.join(attrs)}];")

    def weight_label(value: float) -> str:
        return f"{value:.{max_weight_digits}f}"

    for (flow, port), weight in sorted(graph.flow_port.items(),
                                       key=lambda kv: str(kv[0])):
        lines.append(
            f"  {_quote('F:' + flow.short())} -> "
            f"{_quote('P:' + str(port))} "
            f'[label="{weight_label(weight)}"];')
    for (port, flow), weight in sorted(graph.port_flow.items(),
                                       key=lambda kv: str(kv[0])):
        lines.append(
            f"  {_quote('P:' + str(port))} -> "
            f"{_quote('F:' + flow.short())} "
            f'[label="{weight_label(weight)}", style=dashed];')
    for (src, dst), weight in sorted(graph.port_port.items(),
                                     key=lambda kv: str(kv[0])):
        lines.append(
            f"  {_quote('P:' + str(src))} -> {_quote('P:' + str(dst))} "
            f'[label="{weight_label(weight)}", color=red, penwidth=2];')
    lines.append("}")
    return "\n".join(lines)


def format_critical_path(path: Iterable[CriticalPathEntry],
                         total_width: int = 60) -> str:
    """ASCII timeline of the critical path: one bar per step, scaled to
    the chain's total duration."""
    entries = list(path)
    if not entries:
        return "(empty critical path)"
    start = min(e.start_time for e in entries)
    end = max(e.end_time for e in entries)
    span = max(end - start, 1e-9)
    lines = []
    for entry in entries:
        offset = int((entry.start_time - start) / span * total_width)
        width = max(1, int(entry.duration_ns / span * total_width))
        bar = " " * offset + "#" * width
        label = f"F[{entry.node}]S{entry.step_index}"
        via = f" (via {entry.entered_via})" if entry.entered_via else ""
        lines.append(f"{label:<12} |{bar:<{total_width}}| "
                     f"{entry.duration_ns / 1000:.1f}us{via}")
    return "\n".join(lines)
