"""Command-line interface.

::

    python -m repro scenarios
    python -m repro topology --k 4
    python -m repro run-scenario --scenario flow_contention --system vedrfolnir \
        --case 3 --scale 0.005 --trace run.jsonl
    python -m repro diagnose --trace run.jsonl
    python -m repro figure --id 13b --cases 2

Every subcommand prints human-readable text and exits 0 on success.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.005,
                        help="size/time scale vs. the paper (default "
                             "0.005 = 1.8 MB steps)")
    parser.add_argument("--seed", type=int, default=42,
                        help="base seed for case generation")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Vedrfolnir reproduction: RDMA NPA diagnosis in "
                    "collective communications")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("scenarios", help="list evaluation scenarios")

    topo = sub.add_parser("topology", help="describe a fat-tree")
    topo.add_argument("--k", type=int, default=4, help="fat-tree arity")

    run = sub.add_parser("run-scenario",
                         help="run one case under one diagnosis system")
    run.add_argument("--scenario", required=True,
                     help="flow_contention | incast | pfc_storm | "
                          "pfc_backpressure")
    run.add_argument("--system", default="vedrfolnir",
                     help="vedrfolnir | hawkeye-maxr | hawkeye-minr | "
                          "full-polling")
    run.add_argument("--case", type=int, default=0, help="case id")
    run.add_argument("--trace", help="write a JSONL trace here")
    _add_scenario_args(run)

    diag = sub.add_parser("diagnose",
                          help="offline analysis of a recorded trace")
    diag.add_argument("--trace", required=True, help="JSONL trace file")
    diag.add_argument("--top", type=int, default=5,
                      help="contributors to print")
    diag.add_argument("--json", action="store_true",
                      help="emit the machine-readable report")

    fig = sub.add_parser("figure", help="regenerate one paper figure")
    fig.add_argument("--id", required=True,
                     choices=["9", "10", "11", "12", "13a", "13b", "14"])
    fig.add_argument("--cases", type=int, default=3,
                     help="cases per scenario/setting")
    fig.add_argument("--scale", type=float, default=None)
    return parser


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def cmd_scenarios(_args) -> int:
    from repro.anomalies.scenarios import PAPER_CASE_COUNTS

    print(f"{'scenario':<20} {'paper cases':>12}  ground truth")
    print("-" * 60)
    truths = {
        "flow_contention": "all injected flows detected",
        "incast": "all injected flows detected",
        "pfc_storm": "root port localized",
        "pfc_backpressure": "root port localized",
        "load_imbalance": "overloaded port localized (extension)",
    }
    for name, count in PAPER_CASE_COUNTS.items():
        print(f"{name:<20} {count:>12}  "
              f"{truths.get(name, 'extension scenario')}")
    return 0


def cmd_topology(args) -> int:
    from repro.simnet.topology import build_fat_tree

    topo = build_fat_tree(args.k)
    cores = sum(1 for s in topo.switches if s.startswith("c"))
    aggs = sum(1 for s in topo.switches if s.startswith("a"))
    edges = sum(1 for s in topo.switches if s.startswith("e"))
    print(f"{topo.name}: {len(topo.hosts)} hosts, "
          f"{len(topo.switches)} switches "
          f"({cores} core / {aggs} agg / {edges} edge), "
          f"{len(topo.links)} links")
    sample = topo.links[0]
    print(f"links: {sample.bandwidth_bps / 1e9:.0f} Gbps, "
          f"{sample.delay_ns / 1e3:.0f} us delay")
    return 0


def cmd_run_scenario(args) -> int:
    from repro.anomalies.scenarios import ScenarioConfig, make_cases
    from repro.experiments.harness import make_system, score_case
    from repro.traces import TraceRecorder

    config = ScenarioConfig(scale=args.scale, base_seed=args.seed)
    try:
        cases = make_cases(args.scenario, args.case + 1, config)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    case = cases[args.case]
    try:
        system = make_system(args.system)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    network, runtime = case.build_network()
    system.attach(network, runtime)
    recorder = TraceRecorder.attach(network, runtime) if args.trace \
        else None
    runtime.start()
    truth = case.inject(network, runtime)
    network.run_until_quiet(max_time=config.run_deadline_ns())
    output = system.finalize()
    outcome = score_case(truth, output.result)

    print(f"scenario={case.scenario} case={case.case_id} "
          f"system={system.name}")
    print(f"collective completed: {runtime.completed} "
          f"({(runtime.total_time_ns or 0) / 1e6:.2f} ms)")
    print(f"outcome: {outcome.upper()}  "
          f"(detected {len(output.result.detected_flows)} flows, "
          f"{len(truth.injected_flows)} injected)")
    if truth.root_port is not None:
        print(f"ground-truth root: {truth.root_port}; "
              f"diagnosed roots: "
              f"{[str(p) for p in output.result.root_ports]}")
    print(f"overheads: telemetry "
          f"{network.processing_overhead_bytes / 1000:.1f} KB, "
          f"bandwidth {network.bandwidth_overhead_bytes / 1000:.1f} KB, "
          f"triggers {output.triggers}")
    for finding in output.result.findings:
        print(f"  - {finding.type.value}: {finding.detail}")
    if recorder is not None:
        path = recorder.write(args.trace)
        print(f"trace written to {path}")
    return 0


def cmd_diagnose(args) -> int:
    from repro.core.reports import render_json, render_text
    from repro.traces import analyze_trace, load_trace

    try:
        trace = load_trace(args.trace)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    diagnosis = analyze_trace(trace)
    if args.json:
        print(render_json(diagnosis, top_contributors=args.top,
                          indent=2))
        return 0
    print(f"trace: {args.trace} "
          f"({len(trace.step_records)} step records, "
          f"{len(trace.reports)} switch reports)\n")
    print(render_text(diagnosis, top_contributors=args.top))
    return 0


def cmd_figure(args) -> int:
    from repro.experiments import figures

    def show(rows) -> None:
        if not rows:
            print("(no rows)")
            return
        columns = list(rows[0])
        print(" | ".join(columns))
        for row in rows:
            print(" | ".join(str(row.get(c)) for c in columns))

    fig_id = args.id
    if fig_id == "9":
        show(figures.fig9_precision_recall(args.cases, args.scale))
    elif fig_id == "10":
        show(figures.fig10_overhead(args.cases, args.scale))
    elif fig_id == "11":
        show(figures.fig11_host_overhead(scale=args.scale))
    elif fig_id == "12":
        show(figures.fig12_param_sweep(args.cases, args.scale))
    elif fig_id == "13a":
        show(figures.fig13a_threshold_ablation(args.cases, args.scale))
    elif fig_id == "13b":
        show(figures.fig13b_count_ablation(args.cases, args.scale))
    elif fig_id == "14":
        out = figures.fig14_case_study(scale=args.scale)
        for key in ("collective_ms", "critical_path", "findings",
                    "bf_scores"):
            print(f"{key}: {out[key]}")
    return 0


COMMANDS = {
    "scenarios": cmd_scenarios,
    "topology": cmd_topology,
    "run-scenario": cmd_run_scenario,
    "diagnose": cmd_diagnose,
    "figure": cmd_figure,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
