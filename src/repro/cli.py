"""Command-line interface.

::

    python -m repro scenarios
    python -m repro topology --k 4
    python -m repro run-scenario --scenario flow_contention --system vedrfolnir \
        --case 3 --scale 0.005 --trace run.jsonl
    python -m repro diagnose --trace run.jsonl
    python -m repro trace convert run.jsonl run.vcol
    python -m repro trace info run.vcol
    python -m repro serve --trace run.jsonl --speed 10
    python -m repro serve --trace run.jsonl --checkpoint-dir ckpt --resume
    python -m repro chaos --trace run.jsonl --seed 7 --kills 3
    python -m repro tail --snapshots run.snapshots.jsonl --follow
    python -m repro metrics --file run.live-metrics.json
    python -m repro figure --id 13b --cases 2
    python -m repro check src/ --strict --units
    python -m repro bench --quick --baseline benchmarks/results/BENCH_simcore.json
    python -m repro bench --traceio --out benchmarks/results/BENCH_traceio.json
    python -m repro fleet serve --trace run.jsonl --replicate 8 --shards 4
    python -m repro fleet chaos --trace run.jsonl --kills 2 --corrupt-checkpoint
    python -m repro bench --fleet --tenants 1024 --out benchmarks/results/BENCH_fleet.json

Every subcommand prints human-readable text and exits 0 on success.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.005,
                        help="size/time scale vs. the paper (default "
                             "0.005 = 1.8 MB steps)")
    parser.add_argument("--seed", type=int, default=42,
                        help="base seed for case generation")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Vedrfolnir reproduction: RDMA NPA diagnosis in "
                    "collective communications")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("scenarios", help="list evaluation scenarios")

    topo = sub.add_parser("topology", help="describe a fat-tree")
    topo.add_argument("--k", type=int, default=4, help="fat-tree arity")

    run = sub.add_parser("run-scenario",
                         help="run one case under one diagnosis system")
    run.add_argument("--scenario", required=True,
                     help="flow_contention | incast | pfc_storm | "
                          "pfc_backpressure")
    run.add_argument("--system", default="vedrfolnir",
                     help="vedrfolnir | hawkeye-maxr | hawkeye-minr | "
                          "full-polling")
    run.add_argument("--case", type=int, default=0, help="case id")
    run.add_argument("--trace", help="write a JSONL trace here")
    _add_scenario_args(run)

    diag = sub.add_parser("diagnose",
                          help="offline analysis of a recorded trace")
    diag.add_argument("--trace", required=True,
                      help="trace file (JSONL or columnar)")
    diag.add_argument("--top", type=int, default=5,
                      help="contributors to print")
    diag.add_argument("--json", action="store_true",
                      help="emit the machine-readable report")

    trace = sub.add_parser(
        "trace",
        help="on-disk trace store utilities (convert / info)")
    trace_sub = trace.add_subparsers(dest="trace_command",
                                     required=True)
    tconv = trace_sub.add_parser(
        "convert",
        help="convert a trace between JSONL and the columnar store "
             "(direction auto-detected from the input format)")
    tconv.add_argument("input", help="source trace (JSONL or columnar)")
    tconv.add_argument("output", help="destination path")
    tconv.add_argument("--no-verify", action="store_true",
                       help="skip the canonical-JSONL digest round-"
                            "trip check after converting")
    tinfo = trace_sub.add_parser(
        "info", help="describe a trace file (format, counts, header)")
    tinfo.add_argument("path", help="trace file (JSONL or columnar)")

    serve = sub.add_parser(
        "serve",
        help="replay a JSONL trace through the live streaming pipeline")
    serve.add_argument("--trace", required=True, help="JSONL trace file")
    serve.add_argument("--speed", type=float, default=1.0,
                       help="replay speed multiplier vs simulated time "
                            "(0 = as fast as possible)")
    serve.add_argument("--queue", type=int, default=4096,
                       help="event-bus capacity (<=0 = unbounded)")
    serve.add_argument("--policy", default="block",
                       choices=["block", "drop-oldest", "drop-newest"],
                       help="backpressure policy when the bus is full")
    serve.add_argument("--lateness-us", type=float, default=0.0,
                       help="watermark lateness bound (microseconds of "
                            "event time)")
    serve.add_argument("--snapshot-every", type=int, default=64,
                       help="emit a rolling snapshot every N events "
                            "(0 = final snapshot only)")
    serve.add_argument("--snapshots",
                       help="also append snapshots as JSONL here "
                            "(the repro tail input)")
    serve.add_argument("--metrics",
                       help="write pipeline metrics JSON here (default: "
                            "<trace>.live-metrics.json)")
    serve.add_argument("--top", type=int, default=5,
                       help="contributors to print in the final report")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-snapshot lines")
    serve.add_argument("--checkpoint-dir",
                       help="persist atomic pipeline checkpoints here "
                            "(enables crash-safe resume)")
    serve.add_argument("--checkpoint-every", type=int, default=512,
                       help="checkpoint every N published events")
    serve.add_argument("--checkpoint-retain", type=int, default=3,
                       help="keep the last K snapshots for fallback")
    serve.add_argument("--resume", action="store_true",
                       help="resume from the newest valid checkpoint "
                            "in --checkpoint-dir")
    serve.add_argument("--supervise", type=int, default=0,
                       help="restart a crashed serve loop up to N "
                            "times (0 = no supervision)")
    serve.add_argument("--drain-grace", type=float, default=0.0,
                       help="seconds to linger after a graceful-stop "
                            "signal before exiting (a second signal "
                            "force-exits)")

    chaos = sub.add_parser(
        "chaos",
        help="seeded kill/corrupt/resume harness asserting the "
             "recovery contract: resumed final snapshot bit-equal to "
             "an uninterrupted run")
    chaos.add_argument("--trace", required=True,
                       help="JSONL trace file")
    chaos.add_argument("--seed", type=int, default=0,
                       help="seed for kill placement, perturbations "
                            "and checkpoint damage")
    chaos.add_argument("--kills", type=int, default=3,
                       help="number of seeded kill points spread over "
                            "the stream")
    chaos.add_argument("--kill-at", type=int, action="append",
                       help="explicit kill point (published-event "
                            "count; repeatable, overrides --kills)")
    chaos.add_argument("--corrupt-checkpoint", action="store_true",
                       help="flip a byte of the newest checkpoint "
                            "before each resume")
    chaos.add_argument("--truncate-checkpoint", action="store_true",
                       help="truncate (instead of bit-flip) the "
                            "newest checkpoint before each resume")
    chaos.add_argument("--duplicate-every", type=int, default=0,
                       help="deliver every k-th event twice")
    chaos.add_argument("--reorder-window", type=int, default=0,
                       help="shuffle events inside a window this wide")
    chaos.add_argument("--probe-truncation", action="store_true",
                       help="also probe mid-record trace truncation "
                            "detection and resume")
    chaos.add_argument("--workdir",
                       help="checkpoint/fixture directory (default: a "
                            "temporary directory)")
    chaos.add_argument("--snapshot-every", type=int, default=32,
                       help="pipeline rolling-snapshot cadence")
    chaos.add_argument("--checkpoint-every", type=int, default=64,
                       help="checkpoint cadence in published events")
    chaos.add_argument("--json", action="store_true",
                       help="emit the machine-readable chaos report")

    tail = sub.add_parser(
        "tail", help="print diagnosis snapshots as they land")
    tail.add_argument("--snapshots", required=True,
                      help="snapshot JSONL file written by repro serve")
    tail.add_argument("--follow", action="store_true",
                      help="keep polling for new snapshots until the "
                           "final one lands")
    tail.add_argument("--interval", type=float, default=0.5,
                      help="poll interval in seconds with --follow")

    met = sub.add_parser(
        "metrics", help="render a pipeline metrics JSON export")
    met.add_argument("--file", required=True,
                     help="metrics JSON written by repro serve")

    chk = sub.add_parser(
        "check",
        help="static analysis: determinism / unit-safety / event-loop "
             "rules (RPR001-RPR006, RPR027), plus interprocedural unit "
             "dataflow with --units (RPR010-RPR013), the concurrency "
             "& durability pass with --concurrency (RPR020-RPR026), "
             "the exception-safety & resource-lifecycle pass with "
             "--lifecycle (RPR030-RPR036), or every pass at once "
             "with --all (one parse per file)")
    chk.add_argument("paths", nargs="*", default=["src"],
                     help="files or directories to lint (default: src)")
    chk.add_argument("--strict", action="store_true",
                     help="also flag suppression comments that "
                          "suppress nothing (RPR006)")
    chk.add_argument("--units", action="store_true",
                     help="also run the whole-program unit-of-measure "
                          "dataflow pass (RPR010-RPR013)")
    chk.add_argument("--concurrency", action="store_true",
                     help="also run the concurrency & durability "
                          "discipline pass (RPR020-RPR026)")
    chk.add_argument("--lifecycle", action="store_true",
                     help="also run the exception-safety & resource-"
                          "lifecycle pass (RPR030-RPR036)")
    chk.add_argument("--all", dest="all_passes", action="store_true",
                     help="run every rule family in one invocation "
                          "(base lint + units + concurrency + "
                          "lifecycle), parsing each file once")
    chk.add_argument("--json", action="store_true",
                     help="emit findings as a JSON array "
                          "(same as --format json)")
    chk.add_argument("--format", choices=["text", "json", "github"],
                     default=None,
                     help="output format; 'github' emits "
                          "::error workflow annotations")

    bench = sub.add_parser(
        "bench",
        help="measure the simulator fast path + runner cache and "
             "append one entry to the BENCH_simcore.json perf "
             "trajectory")
    bench.add_argument("--quick", action="store_true",
                       help="smaller workload for CI smoke runs")
    bench.add_argument("--repeats", type=int, default=3,
                       help="gate-scenario repetitions (best counts)")
    bench.add_argument("--label", default="dev",
                       help="trajectory entry label (e.g. a git ref)")
    bench.add_argument("--workers", type=int, default=2,
                       help="process-pool size for the matrix phase")
    bench.add_argument("--out",
                       help="append the entry to this trajectory file")
    bench.add_argument("--baseline",
                       help="trajectory to regression-check against "
                            "(exit 1 beyond --max-regression-pct)")
    bench.add_argument("--max-regression-pct", type=float, default=20.0,
                       help="allowed events/sec drop vs. the newest "
                            "comparable baseline entry")
    bench.add_argument("--json", action="store_true",
                       help="emit the entry as JSON")
    bench.add_argument("--traceio", action="store_true",
                       help="benchmark the trace read path instead "
                            "(JSONL vs columnar, cold vs mmap-warm; "
                            "appends to BENCH_traceio.json via --out)")
    bench.add_argument("--min-read-speedup", type=float, default=0.0,
                       help="fail --traceio when the columnar mmap-"
                            "warm read speedup over JSONL falls below "
                            "this factor (0 = report only)")
    bench.add_argument("--fleet", action="store_true",
                       help="benchmark the sharded fleet service "
                            "instead (appends to BENCH_fleet.json "
                            "via --out)")
    bench.add_argument("--tenants", type=int, default=1024,
                       help="concurrent monitored collectives for "
                            "--fleet")
    bench.add_argument("--fleet-shards", type=int, default=8,
                       help="shard count for --fleet")
    bench.add_argument("--max-lateness-p99", type=float, default=0.0,
                       help="fail --fleet when p99 snapshot lateness "
                            "exceeds this many seconds (0 = report "
                            "only)")
    bench.add_argument("--fleet-mode",
                       choices=["process", "inprocess"],
                       default="process",
                       help="--fleet execution mode: supervised "
                            "worker processes streaming reports over "
                            "the socket transport (default) or the "
                            "single-process reference service")

    fig = sub.add_parser("figure", help="regenerate one paper figure")
    fig.add_argument("--id", required=True,
                     choices=["9", "10", "11", "12", "13a", "13b", "14"])
    fig.add_argument("--cases", type=int, default=3,
                     help="cases per scenario/setting")
    fig.add_argument("--scale", type=float, default=None)

    fleet = sub.add_parser(
        "fleet",
        help="sharded multi-tenant diagnosis fleet (serve / status / "
             "chaos)")
    fleet_sub = fleet.add_subparsers(dest="fleet_command",
                                     required=True)

    fserve = fleet_sub.add_parser(
        "serve",
        help="replay traces as fleet tenants across supervised shard "
             "workers, with a scrapeable /metrics endpoint")
    fserve.add_argument("--trace", action="append", required=True,
                        help="JSONL trace file (repeatable; each "
                             "becomes one tenant)")
    fserve.add_argument("--replicate", type=int, default=1,
                        help="clone each trace into N logical tenants")
    fserve.add_argument("--shards", type=int, default=4,
                        help="shard count tenants are hashed across")
    fserve.add_argument("--vnodes", type=int, default=64,
                        help="virtual ring points per shard")
    fserve.add_argument("--in-process", action="store_true",
                        help="run every shard inside this process "
                             "(default: one supervised worker process "
                             "per shard)")
    fserve.add_argument("--budget", type=int, default=0,
                        help="per-tenant event budget (0 = unlimited)")
    fserve.add_argument("--snapshot-every", type=int, default=32,
                        help="per-tenant rolling-snapshot cadence")
    fserve.add_argument("--checkpoint-every", type=int, default=64,
                        help="per-tenant checkpoint cadence "
                             "(0 disables durability)")
    fserve.add_argument("--workdir",
                        help="fleet state root (checkpoints, reports, "
                             "status); default: a temporary directory")
    fserve.add_argument("--status",
                        help="write the newest fleet snapshot JSON "
                             "here (the repro fleet status input)")
    fserve.add_argument("--port", type=int, default=0,
                        help="metrics exporter port (0 = ephemeral, "
                             "printed on startup)")
    fserve.add_argument("--no-http", action="store_true",
                        help="disable the /metrics exporter")
    fserve.add_argument("--scrape-out",
                        help="also write the final Prometheus text "
                             "exposition to this file")
    fserve.add_argument("--poll", type=float, default=0.2,
                        help="seconds between fan-in merges while "
                             "workers run")
    fserve.add_argument("--linger", type=float, default=0.0,
                        help="keep serving /metrics this many seconds "
                             "after the fleet finishes")
    fserve.add_argument("--quiet", action="store_true",
                        help="suppress rolling fleet summary lines")

    fstatus = fleet_sub.add_parser(
        "status", help="summarize a fleet status file")
    fstatus.add_argument("--status", required=True,
                         help="status JSON written by repro fleet "
                              "serve --status")
    fstatus.add_argument("--json", action="store_true",
                         help="print the raw snapshot JSON")

    fchaos = fleet_sub.add_parser(
        "chaos",
        help="SIGKILL real shard workers mid-replay and assert the "
             "fleet recovery contract (final diagnosis bit-equal to "
             "an uninterrupted run)")
    fchaos.add_argument("--trace", action="append", required=True,
                        help="JSONL trace file (repeatable)")
    fchaos.add_argument("--replicate", type=int, default=1,
                        help="clone each trace into N logical tenants")
    fchaos.add_argument("--shards", type=int, default=4,
                        help="shard count")
    fchaos.add_argument("--seed", type=int, default=0,
                        help="seed for victim choice and damage")
    fchaos.add_argument("--kills", type=int, default=1,
                        help="shard workers to SIGKILL")
    fchaos.add_argument("--kill-frac", type=float, default=0.5,
                        help="kill point as a fraction of the victim "
                             "shard's event stream")
    fchaos.add_argument("--corrupt-checkpoint", action="store_true",
                        help="also damage one victim tenant's newest "
                             "checkpoint between kill and restart")
    fchaos.add_argument("--truncate-checkpoint", action="store_true",
                        help="truncate (instead of bit-flip) that "
                             "checkpoint")
    fchaos.add_argument("--snapshot-every", type=int, default=32,
                        help="per-tenant rolling-snapshot cadence")
    fchaos.add_argument("--checkpoint-every", type=int, default=64,
                        help="per-tenant checkpoint cadence")
    fchaos.add_argument("--workdir",
                        help="experiment directory (default: a "
                             "temporary directory)")
    fchaos.add_argument("--transport", action="store_true",
                        help="stream reports over the socket "
                             "transport with injected network faults "
                             "and health-aware degraded snapshots")
    fchaos.add_argument("--net-drop", type=float, default=0.0,
                        help="with --transport: probability of "
                             "dropping a received chunk")
    fchaos.add_argument("--net-garble", type=float, default=0.0,
                        help="with --transport: probability of "
                             "garbling a received chunk (CRC resets "
                             "the connection)")
    fchaos.add_argument("--net-resets", type=int, default=0,
                        help="with --transport: connection resets to "
                             "inject")
    fchaos.add_argument("--stall-heartbeats", type=float, default=0.0,
                        help="with --transport: probability of "
                             "stalling a worker heartbeat")
    fchaos.add_argument("--port", type=int, default=None,
                        help="with --transport: serve live /metrics "
                             "on this port during the experiment "
                             "(0 = ephemeral; omit = no exporter)")
    fchaos.add_argument("--linger", type=float, default=0.0,
                        help="keep serving /metrics this many seconds "
                             "after the experiment finishes")
    fchaos.add_argument("--json", action="store_true",
                        help="emit the machine-readable chaos report")
    return parser


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def cmd_scenarios(_args) -> int:
    from repro.anomalies.scenarios import PAPER_CASE_COUNTS

    print(f"{'scenario':<20} {'paper cases':>12}  ground truth")
    print("-" * 60)
    truths = {
        "flow_contention": "all injected flows detected",
        "incast": "all injected flows detected",
        "pfc_storm": "root port localized",
        "pfc_backpressure": "root port localized",
        "load_imbalance": "overloaded port localized (extension)",
    }
    for name, count in PAPER_CASE_COUNTS.items():
        print(f"{name:<20} {count:>12}  "
              f"{truths.get(name, 'extension scenario')}")
    return 0


def cmd_topology(args) -> int:
    from repro.simnet.topology import build_fat_tree

    topo = build_fat_tree(args.k)
    cores = sum(1 for s in topo.switches if s.startswith("c"))
    aggs = sum(1 for s in topo.switches if s.startswith("a"))
    edges = sum(1 for s in topo.switches if s.startswith("e"))
    print(f"{topo.name}: {len(topo.hosts)} hosts, "
          f"{len(topo.switches)} switches "
          f"({cores} core / {aggs} agg / {edges} edge), "
          f"{len(topo.links)} links")
    sample = topo.links[0]
    print(f"links: {sample.bandwidth_bps / 1e9:.0f} Gbps, "
          f"{sample.delay_ns / 1e3:.0f} us delay")
    return 0


def cmd_run_scenario(args) -> int:
    from repro.anomalies.scenarios import ScenarioConfig, make_cases
    from repro.experiments.harness import make_system, score_case
    from repro.traces import TraceRecorder

    config = ScenarioConfig(scale=args.scale, base_seed=args.seed)
    try:
        cases = make_cases(args.scenario, args.case + 1, config)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    case = cases[args.case]
    try:
        system = make_system(args.system)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    network, runtime = case.build_network()
    system.attach(network, runtime)
    recorder = TraceRecorder.attach(network, runtime) if args.trace \
        else None
    runtime.start()
    truth = case.inject(network, runtime)
    network.run_until_quiet(max_time=config.run_deadline_ns())
    output = system.finalize()
    outcome = score_case(truth, output.result)

    print(f"scenario={case.scenario} case={case.case_id} "
          f"system={system.name}")
    print(f"collective completed: {runtime.completed} "
          f"({(runtime.total_time_ns or 0) / 1e6:.2f} ms)")
    print(f"outcome: {outcome.upper()}  "
          f"(detected {len(output.result.detected_flows)} flows, "
          f"{len(truth.injected_flows)} injected)")
    if truth.root_port is not None:
        print(f"ground-truth root: {truth.root_port}; "
              f"diagnosed roots: "
              f"{[str(p) for p in output.result.root_ports]}")
    print(f"overheads: telemetry "
          f"{network.processing_overhead_bytes / 1000:.1f} KB, "
          f"bandwidth {network.bandwidth_overhead_bytes / 1000:.1f} KB, "
          f"triggers {output.triggers}")
    for finding in output.result.findings:
        print(f"  - {finding.type.value}: {finding.detail}")
    if recorder is not None:
        path = recorder.write(args.trace)
        print(f"trace written to {path}")
    return 0


def cmd_diagnose(args) -> int:
    from repro.core.reports import render_json, render_text
    from repro.traces import analyze_trace, load_trace

    try:
        trace = load_trace(args.trace)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    diagnosis = analyze_trace(trace)
    if args.json:
        print(render_json(diagnosis, top_contributors=args.top,
                          indent=2))
        return 0
    print(f"trace: {args.trace} "
          f"({len(trace.step_records)} step records, "
          f"{len(trace.reports)} switch reports)\n")
    print(render_text(diagnosis, top_contributors=args.top))
    return 0


def cmd_serve(args) -> int:
    import json
    import time as _time

    from repro.core.units import Microseconds, us_to_ns
    from repro.live import PipelineConfig
    from repro.live.bus import BusPolicy
    from repro.live.checkpoint import (
        CheckpointManager,
        CheckpointPolicy,
        TraceReplayer,
        resume_or_create,
    )
    from repro.live.supervisor import (
        CrashLoopError,
        GracefulShutdown,
        RestartPolicy,
        Supervisor,
    )
    from repro.traces import trace_events
    from repro.traces.stream import read_header

    try:
        header = read_header(args.trace)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    config = PipelineConfig(
        queue_capacity=args.queue,
        policy=BusPolicy(args.policy),
        lateness_bound_ns=us_to_ns(Microseconds(args.lateness_us)),
        snapshot_every=args.snapshot_every,
    )
    manager = None
    if args.checkpoint_dir:
        manager = CheckpointManager(
            args.checkpoint_dir,
            CheckpointPolicy(interval_events=args.checkpoint_every,
                             retain=args.checkpoint_retain))
    shutdown = GracefulShutdown(
        drain_grace_s=args.drain_grace).install()
    print(f"serving {args.trace}: "
          f"{header.schedule.algorithm} {header.schedule.op.value}, "
          f"{len(header.schedule.nodes)} nodes, speed="
          f"{'max' if args.speed <= 0 else f'{args.speed:g}x'}")

    def serve_once(attempt: int):
        """One (re)start of the serve loop; the supervisor target."""
        fresh = attempt == 0 and not args.resume
        pipeline, cursor, resumed = resume_or_create(
            header, manager, config=config, fresh=fresh)
        if resumed:
            print(f"resumed from checkpoint at event "
                  f"{cursor.published}")
        append = resumed or attempt > 0
        snapshot_sink = open(args.snapshots, "a" if append else "w") \
            if args.snapshots else None

        def on_snapshot(snapshot) -> None:
            if not args.quiet:
                print(snapshot.summary_line())
            if snapshot_sink is not None:
                snapshot_sink.write(
                    json.dumps(snapshot.to_dict(args.top)) + "\n")
                snapshot_sink.flush()

        pipeline.on_snapshot.append(on_snapshot)

        def quarantine_line(line_no: int, reason: str,
                            snippet: str) -> None:
            pipeline.quarantine.admit(line_no, reason, snippet)

        last_time = [None]

        def pacing(event) -> None:
            last = last_time[0]
            if args.speed > 0 and last is not None \
                    and event.time > last:
                # sleep in short slices so a graceful-stop signal
                # interrupts replay pacing promptly
                remaining = (event.time - last) / 1e9 / args.speed
                while remaining > 0 and not shutdown.requested:
                    step = min(0.2, remaining)
                    _time.sleep(step)
                    remaining -= step
            last_time[0] = event.time if last is None \
                else max(last, event.time)

        events = trace_events(args.trace, on_error=quarantine_line,
                              cursor=cursor)
        replayer = TraceReplayer(
            pipeline, events, manager, cursor, pacing=pacing,
            should_stop=lambda: shutdown.requested)
        try:
            final = replayer.run()
        finally:
            if snapshot_sink is not None:
                snapshot_sink.close()
        return pipeline, replayer, final

    if args.supervise > 0:
        supervisor = Supervisor(
            serve_once,
            RestartPolicy(max_restarts=args.supervise),
            should_stop=lambda: shutdown.requested)
        try:
            outcome = supervisor.run()
        except CrashLoopError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        if outcome is None:
            print("stopped between restarts; state is in the last "
                  "checkpoint")
            return 0
        pipeline, replayer, final = outcome
    else:
        pipeline, replayer, final = serve_once(0)

    if shutdown.requested:
        shutdown.wait_out_grace()
        print("graceful shutdown: drained, final checkpoint flushed"
              if manager is not None
              else "graceful shutdown: drained")

    print()
    print("final diagnosis")
    print("-" * 15)
    print(f"critical path: {len(final.critical_path)} steps; "
          f"bottleneck steps: {final.bottleneck_steps}")
    if final.confidence < 1.0:
        print(f"confidence: {final.confidence:.2f} "
              f"(switch telemetry degraded)")
    if not final.result.findings:
        print("no network anomalies diagnosed")
    for finding in final.result.findings:
        print(f"  - {finding.type.value}: {finding.detail}")
    ranked = final.top_contributors(args.top)
    if ranked:
        print("contributor ranking (Eq. 3):")
        for flow, score in ranked:
            print(f"  {flow.short():<32} {score:14,.0f}")
    counters = final.counters
    print(f"pipeline: {counters['consumed']} events consumed, "
          f"{counters['dropped']} dropped, "
          f"{counters['late_discarded']} late, "
          f"{counters['quarantined']} quarantined, "
          f"{counters['graph_pruned']} graph records pruned")

    registry = pipeline.build_metrics()
    if manager is not None:
        manager.register_metrics(registry)
    metrics_path = args.metrics or f"{args.trace}.live-metrics.json"
    with open(metrics_path, "w") as handle:
        handle.write(registry.to_json())
        handle.write("\n")
    print(f"metrics written to {metrics_path}")
    return 0


def cmd_chaos(args) -> int:
    import json
    import tempfile

    from repro.live.chaos import (
        ChaosPlan,
        derive_kill_points,
        run_chaos,
    )
    from repro.live.checkpoint import CheckpointPolicy
    from repro.live.pipeline import PipelineConfig

    try:
        if args.kill_at:
            kill_points = tuple(sorted(set(args.kill_at)))
        else:
            kill_points = derive_kill_points(
                args.trace, args.seed, args.kills,
                args.duplicate_every)
        plan = ChaosPlan(
            seed=args.seed,
            kill_points=kill_points,
            corrupt_latest=args.corrupt_checkpoint,
            truncate_checkpoint=args.truncate_checkpoint,
            duplicate_every=args.duplicate_every,
            reorder_window=args.reorder_window,
            probe_truncation=args.probe_truncation,
        )
        config = PipelineConfig(snapshot_every=args.snapshot_every)
        policy = CheckpointPolicy(
            interval_events=args.checkpoint_every,
            max_unflushed_events=max(256, 4 * args.checkpoint_every))
        if args.workdir:
            report = run_chaos(args.trace, args.workdir, plan,
                               config=config, policy=policy)
        else:
            with tempfile.TemporaryDirectory(
                    prefix="repro-chaos-") as workdir:
                report = run_chaos(args.trace, workdir, plan,
                                   config=config, policy=policy)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(f"chaos over {args.trace}: "
              f"kill points {list(plan.kill_points)}"
              + (", corrupting newest checkpoint before each resume"
                 if plan.corrupt_latest or plan.truncate_checkpoint
                 else ""))
        for entry in report.kill_log:
            damage = f", damaged {entry['damaged']}" \
                if entry["damaged"] else ""
            print(f"  killed at event {entry['kill_at']}, resumed "
                  f"from event {entry['resumed_from']}{damage}")
        if report.truncation is not None:
            probe = report.truncation
            print(f"  truncation probe: detected="
                  f"{probe['detected']} resume_offset="
                  f"{probe['resume_offset']} "
                  f"resumed_ok={probe['resumed_ok']}")
        print(report.summary_line())
    return 0 if report.passed else 1


def _format_snapshot_dict(entry: dict) -> str:
    findings = ",".join(sorted({f["type"]
                                for f in entry.get("findings", [])})) \
        or "none"
    contributors = entry.get("contributors") or []
    top = contributors[0]["flow"] if contributors \
        and contributors[0].get("score", 0) > 0 else "-"
    tag = "FINAL" if entry.get("final") else f"#{entry.get('seq')}"
    return (f"[{tag}] wm={entry.get('watermark_ns', 0) / 1e6:.3f}ms "
            f"steps={entry.get('step_records')} "
            f"reports={entry.get('switch_reports')} "
            f"anomalies={findings} top={top}")


def cmd_tail(args) -> int:
    import json
    import time as _time

    printed = 0
    saw_final = False
    while True:
        try:
            with open(args.snapshots) as handle:
                lines = handle.readlines()
        except OSError as error:
            if not args.follow:
                print(f"error: {error}", file=sys.stderr)
                return 2
            lines = []
        for line in lines[printed:]:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # snapshot line still being written
            print(_format_snapshot_dict(entry))
            printed += 1
            if entry.get("final"):
                saw_final = True
        if not args.follow or saw_final:
            return 0
        _time.sleep(args.interval)  # repro: noqa RPR026 - tail -f follows forever until the final snapshot or Ctrl-C


def cmd_metrics(args) -> int:
    import json

    from repro.live import render_metrics_text

    try:
        with open(args.file) as handle:
            data = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(render_metrics_text(data))
    return 0


def _github_annotation(finding) -> str:
    """One GitHub Actions ``::error`` workflow command per finding."""
    message = f"{finding.rule} {finding.message}"
    message = (message.replace("%", "%25")
               .replace("\r", "%0D").replace("\n", "%0A"))
    return (f"::error file={finding.path},line={finding.line},"
            f"col={finding.col},title={finding.rule}::{message}")


def cmd_check(args) -> int:
    import json

    from repro.checks.ir import ParseCache
    from repro.checks.lint import (check_paths, iter_python_files,
                                   render_findings)

    if not any(True for _ in iter_python_files(args.paths)):
        print(f"repro check: no Python files matched: "
              f"{', '.join(args.paths)}", file=sys.stderr)
        return 2
    fmt = args.format or ("json" if args.json else "text")
    run_units = args.units or args.all_passes
    run_concurrency = args.concurrency or args.all_passes
    run_lifecycle = args.lifecycle or args.all_passes
    # one parse per file and one symbol table, shared by every pass
    cache = ParseCache()
    project = None
    if run_units or run_lifecycle:
        from repro.checks.ir import build_project

        project = build_project(args.paths, cache=cache)
    findings = check_paths(args.paths, strict=args.strict,
                           cache=cache)
    if run_units:
        from repro.checks.units import check_units

        findings.extend(check_units(args.paths, strict=args.strict,
                                    cache=cache, project=project))
    if run_concurrency:
        from repro.checks.concurrency import check_concurrency

        findings.extend(check_concurrency(args.paths,
                                          strict=args.strict,
                                          cache=cache,
                                          project=project))
    if run_lifecycle:
        from repro.checks.lifecycle import check_lifecycle

        findings.extend(check_lifecycle(args.paths,
                                        strict=args.strict,
                                        cache=cache,
                                        project=project))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    if fmt == "json":
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    elif fmt == "github":
        for finding in findings:
            print(_github_annotation(finding))
    elif findings:
        print(render_findings(findings))
    if findings:
        rules = sorted({f.rule for f in findings})
        print(f"{len(findings)} finding(s) [{', '.join(rules)}]",
              file=sys.stderr)
        return 1
    if fmt != "json":
        print(f"repro check: clean "
              f"({', '.join(args.paths)})")
    return 0


def cmd_trace_convert(args) -> int:
    from repro.traces.columnar import (
        jsonl_digest,
        sniff_format,
        write_columnar,
        write_jsonl,
    )

    malformed: list = []

    def preserve(line_no: int, reason: str, snippet: str) -> None:
        malformed.append((line_no, reason))

    try:
        source = sniff_format(args.input)
        if source == "jsonl":
            write_columnar(args.input, args.output, on_error=preserve)
            direction = "jsonl -> columnar"
        else:
            write_jsonl(args.input, args.output)
            direction = "columnar -> jsonl"
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"converted {direction}: {args.input} -> {args.output}")
    if malformed:
        first = malformed[0]
        print(f"warning: {len(malformed)} malformed line(s) preserved "
              f"byte-exact (first: line {first[0]}: {first[1]})",
              file=sys.stderr)
    if not args.no_verify:
        before = jsonl_digest(args.input)
        after = jsonl_digest(args.output)
        if before != after:
            print(f"round-trip verification FAILED:\n"
                  f"  source {before}\n  output {after}",
                  file=sys.stderr)
            return 1
        print(f"canonical JSONL digest verified: {before}")
    return 0


def cmd_trace_info(args) -> int:
    from pathlib import Path

    from repro.traces.columnar import ColumnarTrace, sniff_format
    from repro.traces.stream import read_header

    path = Path(args.path)
    try:
        fmt = sniff_format(path)
        print(f"{path}: {fmt} trace, {path.stat().st_size:,} bytes")
        header = read_header(str(path))
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    schedule = header.schedule
    print(f"  schedule: {schedule.algorithm} {schedule.op.value} over "
          f"{len(schedule.nodes)} nodes")
    print(f"  flow keys: {len(header.flow_keys)}, expected step "
          f"times: {len(header.expected_step_times)}")
    if fmt == "columnar":
        with ColumnarTrace(path) as trace:
            print(f"  columnar v{trace.version}: "
                  + ", ".join(f"{kind}={count:,}" for kind, count
                              in sorted(trace.counts.items())))
            print(f"  dictionaries: {len(trace.strings)} strings, "
                  f"{len(trace.flows)} flows; "
                  f"{len(trace.directory['columns'])} columns")
            if trace.unknown_kinds:
                print("  quarantined unknown kinds: "
                      + ", ".join(f"{k}={c}" for k, c in
                                  sorted(trace.unknown_kinds.items())))
    else:
        from repro.traces.stream import merged_events

        counts: dict = {}
        for event in merged_events(str(path)):
            counts[event.kind] = counts.get(event.kind, 0) + 1
        print("  records: "
              + (", ".join(f"{kind}={count:,}" for kind, count
                           in sorted(counts.items())) or "(none)"))
    return 0


TRACE_COMMANDS = {
    "convert": cmd_trace_convert,
    "info": cmd_trace_info,
}


def cmd_trace(args) -> int:
    return TRACE_COMMANDS[args.trace_command](args)


def cmd_bench(args) -> int:
    if args.traceio:
        from repro.perf.traceio import traceio_bench_main

        return traceio_bench_main(
            quick=args.quick,
            repeats=args.repeats,
            label=args.label,
            out=args.out,
            baseline=args.baseline,
            max_regression_pct=args.max_regression_pct,
            min_read_speedup=args.min_read_speedup,
            as_json=args.json,
        )
    if args.fleet:
        from repro.fleet.bench import fleet_bench_main

        return fleet_bench_main(
            tenants=args.tenants,
            shards=args.fleet_shards,
            label=args.label,
            out=args.out,
            max_lateness_p99_s=args.max_lateness_p99,
            as_json=args.json,
            mode=args.fleet_mode,
        )
    from repro.perf.bench import bench_main

    return bench_main(
        quick=args.quick,
        repeats=args.repeats,
        label=args.label,
        workers=args.workers,
        out=args.out,
        baseline=args.baseline,
        max_regression_pct=args.max_regression_pct,
        as_json=args.json,
    )


def cmd_figure(args) -> int:
    from repro.experiments import figures

    def show(rows) -> None:
        if not rows:
            print("(no rows)")
            return
        columns = list(rows[0])
        print(" | ".join(columns))
        for row in rows:
            print(" | ".join(str(row.get(c)) for c in columns))

    fig_id = args.id
    if fig_id == "9":
        show(figures.fig9_precision_recall(args.cases, args.scale))
    elif fig_id == "10":
        show(figures.fig10_overhead(args.cases, args.scale))
    elif fig_id == "11":
        show(figures.fig11_host_overhead(scale=args.scale))
    elif fig_id == "12":
        show(figures.fig12_param_sweep(args.cases, args.scale))
    elif fig_id == "13a":
        show(figures.fig13a_threshold_ablation(args.cases, args.scale))
    elif fig_id == "13b":
        show(figures.fig13b_count_ablation(args.cases, args.scale))
    elif fig_id == "14":
        out = figures.fig14_case_study(scale=args.scale)
        for key in ("collective_ms", "critical_path", "findings",
                    "bf_scores"):
            print(f"{key}: {out[key]}")
    return 0


def _fleet_config(args, workdir):
    from repro.fleet import FleetConfig, TenantPolicy

    policy = TenantPolicy(
        event_budget=getattr(args, "budget", 0),
        snapshot_every=args.snapshot_every,
        checkpoint_every=args.checkpoint_every)
    return FleetConfig(shards=args.shards,
                       vnodes=getattr(args, "vnodes", 64),
                       policy=policy,
                       workdir=str(workdir) if workdir else None)


def _print_fleet_snapshot(snapshot_dict: dict) -> None:
    totals = snapshot_dict.get("totals", {})
    wm = snapshot_dict.get("watermark_ns")
    tag = "FINAL" if snapshot_dict.get("final") \
        else f"#{snapshot_dict.get('seq')}"
    stale = snapshot_dict.get("stale_shards") or []
    print(f"[{tag}] fleet "
          f"wm={'-' if wm is None else f'{wm / 1e6:.3f}ms'} "
          f"shards={len(snapshot_dict.get('shards', []))} "
          f"tenants={totals.get('tenants', 0)} "
          f"final={totals.get('tenants_final', 0)} "
          f"anomalous={totals.get('tenants_with_findings', 0)} "
          f"degraded={totals.get('tenants_degraded', 0)} "
          f"shed={totals.get('events_shed', 0)}"
          + (f" stale={stale}" if stale else ""))


def cmd_fleet_serve(args) -> int:
    import tempfile
    import threading
    import time as _time
    from pathlib import Path

    from repro.fleet import (
        FleetAggregator,
        FleetService,
        MetricsExporter,
        plan_shards,
        registry_from_snapshot,
        render_prometheus,
        replicate_tenants,
    )
    from repro.fleet.service import write_status
    from repro.fleet.worker import read_report, run_fleet_multiprocess

    specs = replicate_tenants(args.trace, args.replicate)
    tmp = None
    if args.workdir:
        workdir = Path(args.workdir)
        workdir.mkdir(parents=True, exist_ok=True)
    else:
        tmp = tempfile.TemporaryDirectory(prefix="repro-fleet-")
        workdir = Path(tmp.name)
    config = _fleet_config(args, workdir / "state")
    print(f"fleet: {len(specs)} tenants over {config.shards} shards "
          f"({'in-process' if args.in_process else 'worker processes'}"
          f", budget="
          f"{config.policy.event_budget or 'unlimited'})")

    latest = {"snapshot": None, "service": None}

    def registry_fn():
        service = latest["service"]
        if service is not None:
            return service.build_registry()
        snapshot = latest["snapshot"]
        if snapshot is None:
            from repro.live.metrics import MetricsRegistry

            return MetricsRegistry()
        return registry_from_snapshot(snapshot)

    exporter = None
    if not args.no_http:
        exporter = MetricsExporter(
            registry_fn, port=args.port,
            status_fn=lambda: latest["snapshot"].to_dict()
            if latest["snapshot"] else None)
        port = exporter.start()
        print(f"metrics: http://127.0.0.1:{port}/metrics")

    def publish(snapshot) -> None:
        latest["snapshot"] = snapshot
        if args.status:
            write_status(args.status, snapshot)
        if not args.quiet:
            print(snapshot.summary_line())

    try:
        if args.in_process:
            service = FleetService(config, specs)
            latest["service"] = service
            final = service.run(on_merge=publish)
        else:
            plan = plan_shards(specs, config.shards, config.vnodes)
            aggregator = FleetAggregator(sorted(plan))
            report_dir = workdir / "reports"
            results = {}
            errors = []

            def run_workers() -> None:
                try:
                    # read only after runner.join() returns, so the
                    # single-writer hand-off needs no lock
                    results.update(run_fleet_multiprocess(  # repro: noqa RPR020
                        config, plan, str(report_dir)))
                except Exception as error:  # noqa: BLE001 - surfaced
                    errors.append(error)  # repro: noqa RPR020

            runner = threading.Thread(target=run_workers,
                                      name="fleet-workers")
            runner.start()
            while runner.is_alive():
                runner.join(max(0.05, args.poll))
                for shard_id in sorted(plan):
                    report = read_report(
                        str(report_dir / f"shard-{shard_id:03d}.json"))
                    if report is not None:
                        aggregator.offer(report)
                publish(aggregator.merge())
            if errors:
                print(f"error: {errors[0]}", file=sys.stderr)
                return 1
            for report in results.values():
                aggregator.offer(report)
            final = aggregator.merge(final=True)
            publish(final)

        if args.scrape_out:
            with open(args.scrape_out, "w") as handle:
                handle.write(render_prometheus(registry_fn()))
            print(f"exposition written to {args.scrape_out}")
        _print_fleet_snapshot(final.to_dict())
        if args.linger > 0 and exporter is not None:
            _time.sleep(args.linger)
        return 0
    finally:
        if exporter is not None:
            exporter.stop()
        if tmp is not None:
            tmp.cleanup()


def cmd_fleet_status(args) -> int:
    import json

    from repro.fleet.service import read_status

    snapshot = read_status(args.status)
    if snapshot is None:
        print(f"error: no readable fleet status at {args.status}",
              file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    _print_fleet_snapshot(snapshot)
    width = max((len(t["tenant"]) for t in snapshot["tenants"]),
                default=6)
    for tenant in snapshot["tenants"]:
        findings = ",".join(tenant["findings"]) or "none"
        flags = []
        if tenant["budget_exhausted"]:
            flags.append("budget")
        if tenant["degraded"]:
            flags.append("degraded")
        note = f" [{','.join(flags)}]" if flags else ""
        print(f"  shard {tenant['shard']} "
              f"{tenant['tenant']:<{width}} "
              f"{'FINAL' if tenant['final'] else '#' + str(tenant['seq']):<6} "
              f"anomalies={findings} "
              f"top={tenant['top_contributor'] or '-'}{note}")
    return 0


def cmd_fleet_chaos(args) -> int:
    import json
    import tempfile
    import threading
    import time as _time

    from repro.fleet import replicate_tenants
    from repro.fleet.chaos import (
        FleetChaosPlan,
        run_fleet_chaos,
        transport_health_policy,
    )

    specs = replicate_tenants(args.trace, args.replicate)
    plan = FleetChaosPlan(
        seed=args.seed,
        kills=args.kills,
        kill_event_frac=args.kill_frac,
        corrupt_checkpoint=args.corrupt_checkpoint,
        truncate_checkpoint=args.truncate_checkpoint,
        transport=args.transport,
        net_drop=args.net_drop,
        net_garble=args.net_garble,
        net_resets=args.net_resets,
        stall_heartbeats=args.stall_heartbeats,
    )
    config = _fleet_config(args, None)

    # optional live exporter during a transport experiment: the CLI
    # owns the aggregator so /metrics can watch the degraded window
    aggregator = None
    exporter = None
    on_merge = None
    if args.transport and args.port is not None:
        from repro.fleet.aggregator import FleetAggregator
        from repro.fleet.exporter import MetricsExporter
        from repro.fleet.service import registry_from_snapshot
        from repro.live.metrics import MetricsRegistry

        aggregator = FleetAggregator(
            range(config.shards), config.mailbox_capacity,
            health=transport_health_policy())
        state_lock = threading.Lock()
        latest = {}

        def on_merge(snapshot):
            with state_lock:
                latest["snapshot"] = snapshot

        def registry_fn():
            with state_lock:
                snapshot = latest.get("snapshot")
            registry = MetricsRegistry() if snapshot is None \
                else registry_from_snapshot(
                    snapshot, aggregator.dropped_total())
            return aggregator.export_into(registry)

        exporter = MetricsExporter(registry_fn, port=args.port)
        port = exporter.start()
        print(f"chaos metrics exporter on "
              f"http://127.0.0.1:{port}/metrics", flush=True)

    try:
        if args.workdir:
            report = run_fleet_chaos(specs, args.workdir, plan,
                                     config=config,
                                     on_merge=on_merge,
                                     aggregator=aggregator)
        else:
            with tempfile.TemporaryDirectory(
                    prefix="repro-fleet-chaos-") as workdir:
                report = run_fleet_chaos(specs, workdir, plan,
                                         config=config,
                                         on_merge=on_merge,
                                         aggregator=aggregator)
    except (OSError, ValueError) as error:
        if exporter is not None:
            exporter.stop()
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary_line())
    if exporter is not None:
        if args.linger > 0:
            print(f"lingering {args.linger:g}s for final scrapes",
                  flush=True)
            _time.sleep(args.linger)
        exporter.stop()
    return 0 if report.passed else 1


FLEET_COMMANDS = {
    "serve": cmd_fleet_serve,
    "status": cmd_fleet_status,
    "chaos": cmd_fleet_chaos,
}


def cmd_fleet(args) -> int:
    return FLEET_COMMANDS[args.fleet_command](args)


COMMANDS = {
    "scenarios": cmd_scenarios,
    "topology": cmd_topology,
    "run-scenario": cmd_run_scenario,
    "diagnose": cmd_diagnose,
    "trace": cmd_trace,
    "serve": cmd_serve,
    "chaos": cmd_chaos,
    "tail": cmd_tail,
    "metrics": cmd_metrics,
    "check": cmd_check,
    "bench": cmd_bench,
    "figure": cmd_figure,
    "fleet": cmd_fleet,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    try:
        raise SystemExit(main())
    except KeyboardInterrupt:
        # the documented interrupted-by-user code (128 + SIGINT)
        raise SystemExit(130) from None
