"""Vedrfolnir reproduction: RDMA network performance anomaly diagnosis
in collective communications (SIGCOMM 2025).

Quickstart::

    from repro import (
        Network, build_fat_tree, ring_allgather,
        CollectiveRuntime, VedrfolnirSystem,
    )

    net = Network(build_fat_tree(4))
    schedule = ring_allgather([f"h{i}" for i in range(8)], 3_600_000)
    runtime = CollectiveRuntime(net, schedule)
    system = VedrfolnirSystem(net, runtime)
    bf = net.create_flow("h8", "h1", 5_000_000, tag="background")
    runtime.start(); bf.start()
    net.run_until_quiet(max_time=20_000_000)
    print(system.analyze().summary())

Packages:

* :mod:`repro.simnet` — the packet-level RDMA network simulator (PFC,
  DCQCN, ECMP, fat-tree);
* :mod:`repro.collective` — collective algorithms, decomposition and
  runtime;
* :mod:`repro.core` — the Vedrfolnir diagnosis system itself;
* :mod:`repro.anomalies` — anomaly injectors and scenario generators;
* :mod:`repro.baselines` — Hawkeye and full-polling baselines;
* :mod:`repro.experiments` — the harness regenerating the paper's
  figures.
"""

from repro.simnet import (
    Network,
    NetworkConfig,
    Topology,
    build_fat_tree,
    build_dumbbell,
    build_linear,
    FlowKey,
    RdmaFlow,
    TelemetryConfig,
)
from repro.collective import (
    CollectiveOp,
    CollectiveRuntime,
    StepSchedule,
    ring_allgather,
    ring_reduce_scatter,
    ring_allreduce,
    halving_doubling_allreduce,
)
from repro.core import (
    VedrfolnirSystem,
    VedrfolnirConfig,
    DetectionConfig,
    WaitingGraph,
    AnomalyType,
    diagnose,
)

__version__ = "1.0.0"

__all__ = [
    "Network",
    "NetworkConfig",
    "Topology",
    "build_fat_tree",
    "build_dumbbell",
    "build_linear",
    "FlowKey",
    "RdmaFlow",
    "TelemetryConfig",
    "CollectiveOp",
    "CollectiveRuntime",
    "StepSchedule",
    "ring_allgather",
    "ring_reduce_scatter",
    "ring_allreduce",
    "halving_doubling_allreduce",
    "VedrfolnirSystem",
    "VedrfolnirConfig",
    "DetectionConfig",
    "WaitingGraph",
    "AnomalyType",
    "diagnose",
    "__version__",
]
